// Unit tests for the log2-bucket latency histogram: bucket boundaries,
// percentile interpolation, merge associativity, and empty/one-sample
// edge cases.
#include "util/histogram.hpp"

#include <cstdint>
#include <vector>

#include "test_common.hpp"

namespace {

using axipack::util::Histogram;

TEST(HistogramBuckets, ZeroHasItsOwnBucket) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_lo(0), 0ull);
  EXPECT_EQ(Histogram::bucket_hi(0), 0ull);
}

TEST(HistogramBuckets, PowerOfTwoBoundaries) {
  // Bucket k >= 1 spans [2^(k-1), 2^k): each power of two opens a new
  // bucket and the value just below it closes the previous one.
  for (unsigned k = 1; k < 64; ++k) {
    const std::uint64_t lo = 1ull << (k - 1);
    EXPECT_EQ(Histogram::bucket_of(lo), k);
    EXPECT_EQ(Histogram::bucket_of(2 * lo - 1), k);
    EXPECT_EQ(Histogram::bucket_lo(k), lo);
    EXPECT_EQ(Histogram::bucket_hi(k), 2 * lo - 1);
  }
  EXPECT_EQ(Histogram::bucket_of(~0ull), 64u);
  EXPECT_EQ(Histogram::bucket_hi(64), ~0ull);
}

TEST(HistogramBuckets, RecordLandsInTheRightBucket) {
  Histogram h;
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(4);
  h.record(1023);
  EXPECT_EQ(h.bucket_count(0), 1ull);  // {0}
  EXPECT_EQ(h.bucket_count(1), 1ull);  // {1}
  EXPECT_EQ(h.bucket_count(2), 2ull);  // {2, 3}
  EXPECT_EQ(h.bucket_count(3), 1ull);  // {4}
  EXPECT_EQ(h.bucket_count(10), 1ull);  // {1023}
  EXPECT_EQ(h.count(), 6ull);
  EXPECT_EQ(h.min(), 0ull);
  EXPECT_EQ(h.max(), 1023ull);
  EXPECT_EQ(h.sum(), 1033ull);
}

TEST(HistogramEdges, EmptyReportsZeroes) {
  Histogram h;
  EXPECT_EQ(h.count(), 0ull);
  EXPECT_EQ(h.min(), 0ull);
  EXPECT_EQ(h.max(), 0ull);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(0.0), 0.0);
  EXPECT_EQ(h.percentile(50.0), 0.0);
  EXPECT_EQ(h.percentile(100.0), 0.0);
}

TEST(HistogramEdges, SingleSampleIsExactEverywhere) {
  Histogram h;
  h.record(42);
  // 42 sits mid-bucket ([32, 63]) but min==max clamps the span, so every
  // quantile is exact.
  EXPECT_EQ(h.percentile(0.0), 42.0);
  EXPECT_EQ(h.percentile(50.0), 42.0);
  EXPECT_EQ(h.percentile(99.0), 42.0);
  EXPECT_EQ(h.percentile(100.0), 42.0);
  EXPECT_EQ(h.mean(), 42.0);
}

TEST(HistogramEdges, ClearResets) {
  Histogram h;
  h.record(7);
  h.record(9000);
  h.clear();
  EXPECT_EQ(h.count(), 0ull);
  EXPECT_EQ(h.percentile(99.0), 0.0);
  h.record(5);
  EXPECT_EQ(h.percentile(50.0), 5.0);
}

TEST(HistogramPercentiles, ExtremesMatchMinMax) {
  Histogram h;
  h.record(3);
  h.record(900);
  h.record(17);
  h.record(64);
  EXPECT_EQ(h.percentile(0.0), 3.0);
  EXPECT_EQ(h.percentile(100.0), 900.0);
}

TEST(HistogramPercentiles, FullBucketInterpolatesExactly) {
  // {4,5,6,7} fill bucket 3 ([4,7]) completely: even spreading across
  // the bucket reconstructs each sample exactly.
  Histogram h;
  for (std::uint64_t v = 4; v <= 7; ++v) h.record(v);
  EXPECT_EQ(h.percentile(0.0), 4.0);
  EXPECT_NEAR(h.percentile(100.0 / 3.0), 5.0, 1e-9);
  EXPECT_NEAR(h.percentile(200.0 / 3.0), 6.0, 1e-9);
  EXPECT_EQ(h.percentile(100.0), 7.0);
  // p50 falls between ranks 1 and 2 -> linear interpolation.
  EXPECT_NEAR(h.percentile(50.0), 5.5, 1e-9);
}

TEST(HistogramPercentiles, SmallSetMatchesExactQuantiles) {
  Histogram h;
  h.record(1);
  h.record(2);
  h.record(3);
  // Buckets: {1} alone, {2,3} spread over [2,3] exactly.
  EXPECT_EQ(h.percentile(0.0), 1.0);
  EXPECT_NEAR(h.percentile(50.0), 2.0, 1e-9);
  EXPECT_EQ(h.percentile(100.0), 3.0);
}

TEST(HistogramPercentiles, MonotoneInP) {
  Histogram h;
  std::uint64_t x = 12345;
  for (int i = 0; i < 1000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    h.record((x >> 33) % 100000);
  }
  double prev = -1.0;
  for (int p = 0; p <= 100; p += 5) {
    const double v = h.percentile(static_cast<double>(p));
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_LE(h.percentile(50.0), h.percentile(95.0));
  EXPECT_LE(h.percentile(95.0), h.percentile(99.0));
  EXPECT_LE(h.percentile(99.0), static_cast<double>(h.max()));
}

TEST(HistogramMerge, MergeEqualsRecordingEverything) {
  Histogram a, b, all;
  for (std::uint64_t v : {1ull, 5ull, 70ull, 3000ull}) {
    a.record(v);
    all.record(v);
  }
  for (std::uint64_t v : {0ull, 2ull, 900ull}) {
    b.record(v);
    all.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.sum(), all.sum());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  for (unsigned i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(a.bucket_count(i), all.bucket_count(i));
  }
  EXPECT_EQ(a.percentile(99.0), all.percentile(99.0));
}

TEST(HistogramMerge, Associative) {
  Histogram a, b, c;
  std::uint64_t x = 99;
  for (int i = 0; i < 50; ++i) {
    x = x * 2862933555777941757ull + 3037000493ull;
    const std::uint64_t v = (x >> 40) + (i % 3);
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).record(v);
  }
  // (a + b) + c
  Histogram left = a;
  left.merge(b);
  left.merge(c);
  // a + (b + c)
  Histogram right_tail = b;
  right_tail.merge(c);
  Histogram right = a;
  right.merge(right_tail);
  EXPECT_EQ(left.count(), right.count());
  EXPECT_EQ(left.sum(), right.sum());
  EXPECT_EQ(left.min(), right.min());
  EXPECT_EQ(left.max(), right.max());
  for (unsigned i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(left.bucket_count(i), right.bucket_count(i));
  }
  for (double p : {0.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_EQ(left.percentile(p), right.percentile(p));
  }
}

TEST(HistogramMerge, MergingEmptyIsIdentity) {
  Histogram h, empty;
  h.record(11);
  h.record(300);
  const double p99 = h.percentile(99.0);
  h.merge(empty);
  EXPECT_EQ(h.count(), 2ull);
  EXPECT_EQ(h.percentile(99.0), p99);
  Histogram other;
  other.merge(h);
  EXPECT_EQ(other.min(), 11ull);
  EXPECT_EQ(other.max(), 300ull);
}

}  // namespace
