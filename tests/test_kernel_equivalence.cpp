// Gated-vs-naive kernel equivalence: the activity-gated kernel (sleeping
// components, wake scheduling, idle fast-forward, lazy pop accounting) must
// report bit-identical results to the force-naive kernel (every component
// ticked every cycle) for every registered scenario and for the sensitivity
// harness — cycle counts, utilizations, bus/bank statistics, everything a
// figure could be built from.
#include "test_common.hpp"

#include <cstdint>
#include <string>
#include <vector>

#include "dma/descriptor.hpp"
#include "systems/runner.hpp"
#include "systems/scenario.hpp"
#include "systems/sensitivity.hpp"
#include "systems/system.hpp"
#include "workloads/workloads.hpp"

namespace axipack {
namespace {

/// Everything a figure could read out of one run.
struct Snapshot {
  std::uint64_t cycles = 0;
  double r_util = 0.0;
  double r_util_no_idx = 0.0;
  double w_util = 0.0;
  bool correct = false;
  std::uint64_t protocol_violations = 0;
  std::uint64_t bank_grants = 0;
  std::uint64_t bank_conflict_losses = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  std::uint64_t refresh_stall_cycles = 0;
  std::uint64_t row_batch_defer_cycles = 0;
  std::uint64_t row_starved_grants = 0;
  std::uint64_t r_beats = 0;
  std::uint64_t r_payload_bytes = 0;
  std::uint64_t w_beats = 0;
  std::uint64_t coalesce_merged = 0;
  std::uint64_t coalesce_unique = 0;
  std::uint64_t coalesce_peak_pending = 0;
  std::uint64_t coalesce_row_groups = 0;
  std::uint64_t indirect_idx_words = 0;
  std::uint64_t indirect_elem_words = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t faults_corrected = 0;
  std::uint64_t retries = 0;
  std::uint64_t retry_timeouts = 0;
  std::uint64_t failed_ops = 0;
  bool degraded = false;
  std::uint64_t dma_bytes_moved = 0;
  std::uint64_t dma_busy_cycles = 0;

  static Snapshot of(const sys::RunResult& r) {
    Snapshot s;
    s.cycles = r.cycles;
    s.r_util = r.r_util;
    s.r_util_no_idx = r.r_util_no_idx;
    s.w_util = r.w_util;
    s.correct = r.correct;
    s.protocol_violations = r.protocol_violations;
    s.bank_grants = r.bank_grants;
    s.bank_conflict_losses = r.bank_conflict_losses;
    s.row_hits = r.row_hits;
    s.row_misses = r.row_misses;
    s.refresh_stall_cycles = r.refresh_stall_cycles;
    s.row_batch_defer_cycles = r.row_batch_defer_cycles;
    s.row_starved_grants = r.row_starved_grants;
    s.r_beats = r.bus.r_beats;
    s.r_payload_bytes = r.bus.r_payload_bytes;
    s.w_beats = r.bus.w_beats;
    s.coalesce_merged = r.coalesce_merged;
    s.coalesce_unique = r.coalesce_unique;
    s.coalesce_peak_pending = r.coalesce_peak_pending;
    s.coalesce_row_groups = r.coalesce_row_groups;
    s.indirect_idx_words = r.indirect_idx_words;
    s.indirect_elem_words = r.indirect_elem_words;
    s.faults_injected = r.faults_injected;
    s.faults_corrected = r.faults_corrected;
    s.retries = r.retries;
    s.retry_timeouts = r.retry_timeouts;
    s.failed_ops = r.failed_ops;
    s.degraded = r.degraded;
    return s;
  }
};

void expect_identical(const Snapshot& naive, const Snapshot& gated,
                      const std::string& what) {
  EXPECT_EQ(naive.cycles, gated.cycles) << what;
  EXPECT_EQ(naive.r_util, gated.r_util) << what;
  EXPECT_EQ(naive.r_util_no_idx, gated.r_util_no_idx) << what;
  EXPECT_EQ(naive.w_util, gated.w_util) << what;
  EXPECT_EQ(naive.correct, gated.correct) << what;
  EXPECT_EQ(naive.protocol_violations, gated.protocol_violations) << what;
  EXPECT_EQ(naive.bank_grants, gated.bank_grants) << what;
  EXPECT_EQ(naive.bank_conflict_losses, gated.bank_conflict_losses) << what;
  EXPECT_EQ(naive.row_hits, gated.row_hits) << what;
  EXPECT_EQ(naive.row_misses, gated.row_misses) << what;
  EXPECT_EQ(naive.refresh_stall_cycles, gated.refresh_stall_cycles) << what;
  EXPECT_EQ(naive.row_batch_defer_cycles, gated.row_batch_defer_cycles)
      << what;
  EXPECT_EQ(naive.row_starved_grants, gated.row_starved_grants) << what;
  EXPECT_EQ(naive.r_beats, gated.r_beats) << what;
  EXPECT_EQ(naive.r_payload_bytes, gated.r_payload_bytes) << what;
  EXPECT_EQ(naive.w_beats, gated.w_beats) << what;
  EXPECT_EQ(naive.coalesce_merged, gated.coalesce_merged) << what;
  EXPECT_EQ(naive.coalesce_unique, gated.coalesce_unique) << what;
  EXPECT_EQ(naive.coalesce_peak_pending, gated.coalesce_peak_pending)
      << what;
  EXPECT_EQ(naive.coalesce_row_groups, gated.coalesce_row_groups) << what;
  EXPECT_EQ(naive.indirect_idx_words, gated.indirect_idx_words) << what;
  EXPECT_EQ(naive.indirect_elem_words, gated.indirect_elem_words) << what;
  EXPECT_EQ(naive.faults_injected, gated.faults_injected) << what;
  EXPECT_EQ(naive.faults_corrected, gated.faults_corrected) << what;
  EXPECT_EQ(naive.retries, gated.retries) << what;
  EXPECT_EQ(naive.retry_timeouts, gated.retry_timeouts) << what;
  EXPECT_EQ(naive.failed_ops, gated.failed_ops) << what;
  EXPECT_EQ(naive.degraded, gated.degraded) << what;
  EXPECT_EQ(naive.dma_bytes_moved, gated.dma_bytes_moved) << what;
  EXPECT_EQ(naive.dma_busy_cycles, gated.dma_busy_cycles) << what;
}

/// Drives one scenario to completion under the requested kernel mode:
/// processor masters run a small gemv, DMA masters move a strided stream.
Snapshot drive_scenario(const std::string& name, bool naive) {
  sys::SystemBuilder builder =
      sys::ScenarioRegistry::instance().builder(name);
  builder.naive_kernel(naive);
  std::unique_ptr<sys::System> system = builder.build();

  // Seed each DMA master with a deterministic strided->contiguous move.
  std::vector<std::uint64_t> dma_dsts;
  constexpr std::uint64_t kDmaElems = 192;
  for (sys::MasterId id = 0; id < system->num_masters(); ++id) {
    if (!system->is_dma(id)) continue;
    mem::BackingStore& store = system->store();
    const std::int64_t stride = 36 + 8 * static_cast<std::int64_t>(id);
    const std::uint64_t src =
        store.alloc(kDmaElems * static_cast<std::uint64_t>(stride) + 64, 64);
    const std::uint64_t dst = store.alloc(kDmaElems * 4, 64);
    for (std::uint64_t i = 0; i < kDmaElems; ++i) {
      store.write_u32(src + i * static_cast<std::uint64_t>(stride),
                      (id << 20) + static_cast<std::uint32_t>(i));
    }
    dma::Descriptor d;
    d.src = dma::Pattern::strided(src, stride);
    d.dst = dma::Pattern::contiguous(dst);
    d.elem_bytes = 4;
    d.num_elems = kDmaElems;
    system->dma(id).push(d);
    dma_dsts.push_back(dst);
  }

  Snapshot snap;
  bool has_proc = false;
  for (sys::MasterId id = 0; id < system->num_masters(); ++id) {
    has_proc = has_proc || system->is_processor(id);
  }
  if (has_proc) {
    auto cfg = sys::plan_workload(wl::KernelKind::gemv, name);
    cfg.n = 96;  // small but multi-op: issue, chaining, loads and stores
    const wl::WorkloadInstance instance =
        wl::build_workload(system->store(), cfg);
    snap = Snapshot::of(system->run(instance));
  } else {
    const sim::RunStatus status = system->run_until_drained(5'000'000);
    EXPECT_TRUE(status.completed) << name;
    snap.cycles = status.cycles;
    snap.correct = true;
  }
  // Fold in DMA outcomes (and verify the moved data).
  for (sys::MasterId id = 0, d = 0; id < system->num_masters(); ++id) {
    if (!system->is_dma(id)) continue;
    snap.dma_bytes_moved += system->dma(id).stats().bytes_moved;
    snap.dma_busy_cycles += system->dma(id).stats().busy_cycles;
    for (std::uint64_t i = 0; i < kDmaElems; ++i) {
      EXPECT_EQ(system->store().read_u32(dma_dsts[d] + 4 * i),
                (id << 20) + i)
          << name << " dma " << id << " elem " << i;
    }
    ++d;
  }
  return snap;
}

TEST(KernelEquivalence, EveryRegisteredScenario) {
  for (const std::string& name : sys::ScenarioRegistry::instance().names()) {
    const Snapshot naive = drive_scenario(name, /*naive=*/true);
    const Snapshot gated = drive_scenario(name, /*naive=*/false);
    expect_identical(naive, gated, name);
  }
}

TEST(KernelEquivalence, ParametricFamilyMembers) {
  // Parsed (not pre-registered) family points, covering the narrow buses
  // and the DRAM backend (base-dram/pack-dram themselves are registered and
  // already covered by EveryRegisteredScenario).
  for (const std::string name :
       {"base-64-9b", "pack-64-9b", "pack-128-31b", "ideal-128",
        "pack-64-dram", "base-128-dram",
        // Row-batching scheduler family: head-only, small window with a
        // tight cap, full window with the veto disabled, and an explicit
        // memory-FIFO depth — the gated kernel must stay cycle-identical
        // at every sched-window setting.
        "pack-256-dram-w1", "pack-64-dram-w8-c16", "pack-128-dram-w32-c0",
        "base-64-dram-w16-q48",
        // Index-coalescer family: small and large pending tables, head-only
        // and deep grouping windows, and a knob mix on a narrow bus — the
        // gated kernel must stay cycle-identical with the coalescer's
        // merge/fan-out/reorder machinery in the loop (and the coalescer
        // stats themselves must be bit-identical).
        "pack-256-dram-x16", "pack-64-dram-x8-g4",
        "pack-128-dram-x32-g16-w8",
        // Multi-channel family: the channel router's eager response
        // reordering holds internal state the gating sleep logic must
        // account for, so cycle identity here guards the whole
        // fan-out/reassembly machine, alone and composed with the other
        // knobs (scheduler window, coalescer, extra masters).
        "pack-256-dram-ch2", "base-128-dram-ch2", "pack-64-dram-ch4-w8",
        "pack-256-dram-ch8-x16", "pack-256-dram-ch4-m6"}) {
    const Snapshot naive = drive_scenario(name, /*naive=*/true);
    const Snapshot gated = drive_scenario(name, /*naive=*/false);
    expect_identical(naive, gated, name);
  }
}

TEST(KernelEquivalence, CoalescedIndirectKernels) {
  // The parametric sweep above drives gemv, which never enters the
  // indirect path — run real gather kernels through coalesced scenarios so
  // the pending table, fan-out and grouping window are actually in the
  // loop, and require the coalescer to have merged something (non-vacuous).
  for (const std::string scenario :
       {std::string("pack-dram-coalesce"), std::string("pack-64-dram-x8-g4")}) {
    for (const auto kernel : {wl::KernelKind::spmv, wl::KernelKind::sssp}) {
      auto cfg = sys::plan_workload(kernel, scenario);
      cfg.n = 96;
      cfg.nnz_per_row = 24;
      sys::WorkloadJob naive_job;
      naive_job.scenario = scenario;
      naive_job.cfg = cfg;
      naive_job.naive_kernel = true;
      sys::WorkloadJob gated_job = naive_job;
      gated_job.naive_kernel = false;
      const auto results =
          sys::run_workloads({naive_job, gated_job}, /*threads=*/1);
      const Snapshot naive = Snapshot::of(results[0]);
      const Snapshot gated = Snapshot::of(results[1]);
      expect_identical(naive, gated,
                       scenario + " " + wl::kernel_name(kernel));
      EXPECT_GT(gated.coalesce_unique, 0u) << scenario;
      EXPECT_GT(gated.coalesce_merged, 0u) << scenario;
    }
  }
}

TEST(KernelEquivalence, FaultInjectionStaysCycleIdentical) {
  // Fault decisions are a pure hash of per-site event ordinals, so the
  // gated and naive kernels (identical traffic) must see identical faults,
  // identical retries and identical cycles. Rates high enough that the run
  // is non-vacuous: faults actually fire and are recovered.
  for (const std::string scenario :
       {std::string("pack-256-dram-f50-r4"),
        std::string("pack-64-dram-f50-r4"),
        // Faults on a multi-channel fabric: per-link injection plus the
        // router's truncation-poison path must stay deterministic.
        std::string("pack-256-dram-ch4-f50-r4")}) {
    for (const auto kernel : {wl::KernelKind::spmv, wl::KernelKind::gemv}) {
      auto cfg = sys::plan_workload(kernel, scenario);
      cfg.n = 64;
      if (wl::kernel_is_indirect(kernel)) cfg.nnz_per_row = 16;
      sys::WorkloadJob naive_job;
      naive_job.scenario = scenario;
      naive_job.cfg = cfg;
      naive_job.naive_kernel = true;
      sys::WorkloadJob gated_job = naive_job;
      gated_job.naive_kernel = false;
      const auto results =
          sys::run_workloads({naive_job, gated_job}, /*threads=*/1);
      const Snapshot naive = Snapshot::of(results[0]);
      const Snapshot gated = Snapshot::of(results[1]);
      expect_identical(naive, gated,
                       scenario + " " + wl::kernel_name(kernel));
      EXPECT_GT(gated.faults_injected, 0u)
          << scenario << " " << wl::kernel_name(kernel);
      EXPECT_TRUE(gated.correct) << scenario << " " << results[1].error;
    }
  }
}

TEST(KernelEquivalence, RefreshEpochMultiSkipStress) {
  // Tiny refresh interval: epochs are ~18x more frequent than the default,
  // so every idle fast-forward in the gated run (converter stalls, drain
  // tails) spans several tREFI boundaries, and the DRAM model's lazy
  // multi-epoch refresh catch-up plus bulk stall settlement must stay bit-
  // and cycle-identical to per-cycle naive ticking. (The timing set keeps
  // the ctor liveness rule tRFC + tRP + tRCD < tREFI.)
  mem::DramTimingConfig t;
  t.tREFI = 256;
  t.tRFC = 48;
  for (const auto kernel : {wl::KernelKind::gemv, wl::KernelKind::spmv}) {
    for (const std::string scenario :
         {std::string("pack-dram"), std::string("base-dram")}) {
      auto cfg = sys::plan_workload(kernel, scenario);
      cfg.n = 64;
      if (wl::kernel_is_indirect(kernel)) cfg.nnz_per_row = 16;
      sys::WorkloadJob naive_job;
      naive_job.scenario = scenario;
      naive_job.cfg = cfg;
      naive_job.naive_kernel = true;
      naive_job.builder_patch = [&t](sys::SystemBuilder& b) {
        b.dram_timing(t);
      };
      sys::WorkloadJob gated_job = naive_job;
      gated_job.naive_kernel = false;
      const auto results =
          sys::run_workloads({naive_job, gated_job}, /*threads=*/1);
      const Snapshot naive = Snapshot::of(results[0]);
      const Snapshot gated = Snapshot::of(results[1]);
      expect_identical(naive, gated, scenario + " small-tREFI " +
                                         wl::kernel_name(kernel));
      EXPECT_TRUE(gated.correct) << scenario << " " << results[1].error;
      // Non-vacuous: the run must actually have crossed many epochs.
      EXPECT_GT(gated.refresh_stall_cycles, 0u) << scenario;
      EXPECT_GT(gated.cycles, 4u * t.tREFI) << scenario;
    }
  }
}

TEST(KernelEquivalence, DramRowStatsAreExercised) {
  // Guard against the dram equivalence checks passing vacuously: the gated
  // run of a dram scenario must actually accumulate row-buffer activity.
  const Snapshot gated = drive_scenario("pack-dram", /*naive=*/false);
  EXPECT_GT(gated.row_hits + gated.row_misses, 0u);
  EXPECT_EQ(gated.row_hits + gated.row_misses, gated.bank_grants);
}

TEST(KernelEquivalence, EveryHeadlineWorkloadKind) {
  // All six paper kernels on the PACK SoC (the richest converter mix).
  const wl::KernelKind kernels[] = {wl::KernelKind::ismt, wl::KernelKind::gemv,
                                    wl::KernelKind::trmv, wl::KernelKind::spmv,
                                    wl::KernelKind::prank,
                                    wl::KernelKind::sssp};
  for (const auto kernel : kernels) {
    auto cfg = sys::plan_workload(kernel, sys::scenario_name(sys::SystemKind::pack));
    if (wl::kernel_is_indirect(kernel)) {
      cfg.n = 128;
      cfg.nnz_per_row = 48;
    } else {
      cfg.n = 96;
    }
    const std::string scenario = sys::scenario_name(sys::SystemKind::pack);
    sys::WorkloadJob naive_job;
    naive_job.scenario = scenario;
    naive_job.cfg = cfg;
    naive_job.naive_kernel = true;
    sys::WorkloadJob gated_job = naive_job;
    gated_job.naive_kernel = false;
    const auto results =
        sys::run_workloads({naive_job, gated_job}, /*threads=*/1);
    expect_identical(Snapshot::of(results[0]), Snapshot::of(results[1]),
                     std::string(wl::kernel_name(kernel)));
  }
}

TEST(KernelEquivalence, OpenLoopTrafficStaysCycleIdentical) {
  // The open-loop subsystem sleeps between arrivals via wake_hint, so it is
  // exactly the kind of component that could desynchronize the gated
  // kernel. Latency percentiles, rates and queue peaks — not just cycle
  // counts — must match the naive kernel on every arrival shape: smooth
  // Poisson, bursty, multi-channel, coalesced and fault-injected.
  for (const std::string name :
       {std::string("base-256-dram-p80"), std::string("pack-256-dram-p160"),
        std::string("pack-256-dram-p80-b16"),
        std::string("pack-256-dram-x512-g16-ch2-p160"),
        std::string("pack-256-dram-f50-r4-p80")}) {
    sys::RunResult res[2];
    for (const bool naive : {false, true}) {
      auto b = sys::ScenarioRegistry::instance().builder(name);
      b.naive_kernel(naive);
      res[naive] = b.build()->run_open_loop(60'000, 10'000'000);
      ASSERT_TRUE(res[naive].correct) << name << ": " << res[naive].error;
    }
    EXPECT_EQ(res[0].cycles, res[1].cycles) << name;
    EXPECT_EQ(res[0].latency.count(), res[1].latency.count()) << name;
    EXPECT_EQ(res[0].latency.percentile(50), res[1].latency.percentile(50))
        << name;
    EXPECT_EQ(res[0].latency.percentile(99), res[1].latency.percentile(99))
        << name;
    EXPECT_EQ(res[0].latency.max(), res[1].latency.max()) << name;
    EXPECT_EQ(res[0].offered_rate, res[1].offered_rate) << name;
    EXPECT_EQ(res[0].achieved_rate, res[1].achieved_rate) << name;
    EXPECT_EQ(res[0].queue_peak, res[1].queue_peak) << name;
    EXPECT_EQ(res[0].retries, res[1].retries) << name;
    EXPECT_EQ(res[0].faults_injected, res[1].faults_injected) << name;
  }
}

TEST(KernelEquivalence, SensitivityHarness) {
  for (const bool indirect : {false, true}) {
    sys::SensitivityConfig cfg;
    cfg.indirect = indirect;
    cfg.stride_elems = indirect ? 1 : 7;
    cfg.num_bursts = 2;
    cfg.burst_beats = 64;
    sys::SensitivityConfig naive_cfg = cfg;
    naive_cfg.naive_kernel = true;
    const auto naive = sys::measure_read_utilization(naive_cfg);
    const auto gated = sys::measure_read_utilization(cfg);
    EXPECT_EQ(naive.cycles, gated.cycles) << "indirect=" << indirect;
    EXPECT_EQ(naive.payload_bytes, gated.payload_bytes);
    EXPECT_EQ(naive.r_util, gated.r_util);
    EXPECT_EQ(naive.bank_conflict_losses, gated.bank_conflict_losses);
  }
}

}  // namespace
}  // namespace axipack
