// Area/timing/power model tests: the analytical models must reproduce every
// published calibration point and behave sanely between them.
#include "test_common.hpp"

#include "energy/area_model.hpp"
#include "energy/power_model.hpp"
#include "energy/tech.hpp"
#include "systems/runner.hpp"

namespace axipack::energy {
namespace {

TEST(AreaModel, MatchesPaperAt1GHz) {
  EXPECT_DOUBLE_EQ(*adapter_area_kge(64, 1000.0), 69.0);
  EXPECT_DOUBLE_EQ(*adapter_area_kge(128, 1000.0), 130.0);
  EXPECT_DOUBLE_EQ(*adapter_area_kge(256, 1000.0), 257.0);
}

TEST(AreaModel, MinPeriodsMatchPaper) {
  EXPECT_DOUBLE_EQ(adapter_min_period_ps(64), 787.0);
  EXPECT_DOUBLE_EQ(adapter_min_period_ps(128), 800.0);
  EXPECT_DOUBLE_EQ(adapter_min_period_ps(256), 839.0);
}

TEST(AreaModel, InfeasibleBelowMinPeriod) {
  EXPECT_FALSE(adapter_area_kge(256, 800.0).has_value());
  EXPECT_TRUE(adapter_area_kge(256, 839.0).has_value());
}

TEST(AreaModel, AreaMonotoneWithClockPressure) {
  // Tightening the clock must never shrink area.
  double prev = 1e9;
  for (double clk = 840; clk <= 3000; clk += 20) {
    const double area = *adapter_area_kge(256, clk);
    EXPECT_LE(area, prev + 1e-9) << "at " << clk;
    prev = area;
  }
  // Tight-clock penalty bounded (graceful scaling, paper: "small increases").
  EXPECT_LT(*adapter_area_kge(256, 839.0), 257.0 * 1.2);
}

TEST(AreaModel, LinearInBusWidth) {
  const double a64 = *adapter_area_kge(64, 1000);
  const double a128 = *adapter_area_kge(128, 1000);
  const double a256 = *adapter_area_kge(256, 1000);
  // Ratios roughly 2x per doubling.
  EXPECT_NEAR(a128 / a64, 2.0, 0.25);
  EXPECT_NEAR(a256 / a128, 2.0, 0.25);
}

TEST(AreaModel, BreakdownMatchesPaperShares) {
  const auto b = adapter_breakdown_kge(256);
  EXPECT_NEAR(b.total(), 257.0, 2.0);
  EXPECT_NEAR(b.indirect_w, 74.0, 2.0);
  EXPECT_NEAR(b.indirect_r, 73.0, 2.0);
  EXPECT_NEAR(b.strided_w, 37.0, 2.0);
  EXPECT_NEAR(b.strided_r, 36.0, 2.0);
  EXPECT_NEAR(b.base_conv, 26.0, 2.0);
  // Indirect converters ~2x strided (two-stage design).
  EXPECT_NEAR(b.indirect_r / b.strided_r, 2.0, 0.3);
  // Read/write converters nearly equal (mirrored datapaths).
  EXPECT_NEAR(b.strided_w / b.strided_r, 1.0, 0.1);
}

TEST(AreaModel, AdapterIsSmallFractionOfAra) {
  const double ratio = *adapter_area_kge(256, 1000) / ara_area_kge(8);
  EXPECT_NEAR(ratio, 0.062, 0.005);  // paper: 6.2%
}

TEST(XbarArea, Pow2HasNoModDiv) {
  for (const unsigned banks : {8u, 16u, 32u}) {
    const auto a = bank_xbar_area_kge(banks);
    EXPECT_EQ(a.modulo, 0.0);
    EXPECT_EQ(a.divider, 0.0);
  }
}

TEST(XbarArea, PrimePaysModDivOverhead) {
  for (const unsigned banks : {11u, 17u, 31u}) {
    const auto a = bank_xbar_area_kge(banks);
    EXPECT_GT(a.modulo, 0.0);
    EXPECT_GT(a.divider, 0.0);
  }
}

TEST(XbarArea, PrimeOverheadShrinksRelatively) {
  // Paper: "prime-banked overheads decrease with increasing bank counts".
  const auto a11 = bank_xbar_area_kge(11);
  const auto a31 = bank_xbar_area_kge(31);
  const double rel11 = (a11.modulo + a11.divider) / a11.total();
  const double rel31 = (a31.modulo + a31.divider) / a31.total();
  EXPECT_LT(rel31, rel11);
}

TEST(XbarArea, GrowsWithBanksAndPorts) {
  EXPECT_LT(bank_xbar_area_kge(8).total(), bank_xbar_area_kge(32).total());
  EXPECT_LT(bank_xbar_area_kge(17, 2).total(),
            bank_xbar_area_kge(17, 8).total());
}

TEST(PowerModel, BasePowersInPaperBand) {
  // Fig. 4c: benchmark powers land between ~90 and ~330 mW.
  for (const auto kernel : {wl::KernelKind::ismt, wl::KernelKind::gemv,
                            wl::KernelKind::spmv}) {
    const auto r = sys::run_workload(
        sys::scenario_name(sys::SystemKind::base),
        sys::plan_workload(kernel, sys::scenario_name(sys::SystemKind::base)));
    const auto p = estimate(r);
    EXPECT_GT(p.power_mw, 80.0) << wl::kernel_name(kernel);
    EXPECT_LT(p.power_mw, 350.0) << wl::kernel_name(kernel);
  }
}

TEST(PowerModel, PackPowerRisesModerately) {
  // Paper: PACK increases power by at most ~31%.
  for (const auto kernel : {wl::KernelKind::ismt, wl::KernelKind::gemv,
                            wl::KernelKind::trmv, wl::KernelKind::spmv}) {
    const auto base = sys::run_workload(
        sys::scenario_name(sys::SystemKind::base),
        sys::plan_workload(kernel, sys::scenario_name(sys::SystemKind::base)));
    const auto pack = sys::run_workload(
        sys::scenario_name(sys::SystemKind::pack),
        sys::plan_workload(kernel, sys::scenario_name(sys::SystemKind::pack)));
    const double ratio =
        estimate(pack).power_mw / estimate(base).power_mw;
    EXPECT_GT(ratio, 0.95) << wl::kernel_name(kernel);
    EXPECT_LT(ratio, 1.45) << wl::kernel_name(kernel);
  }
}

TEST(PowerModel, EfficiencyGainTracksSpeedup) {
  const auto base = sys::run_workload(
      sys::scenario_name(sys::SystemKind::base),
      sys::plan_workload(wl::KernelKind::ismt,
                         sys::scenario_name(sys::SystemKind::base)));
  const auto pack = sys::run_workload(
      sys::scenario_name(sys::SystemKind::pack),
      sys::plan_workload(wl::KernelKind::ismt,
                         sys::scenario_name(sys::SystemKind::pack)));
  const double speedup = static_cast<double>(base.cycles) / pack.cycles;
  const double gain = efficiency_gain(estimate(base), base.cycles,
                                      estimate(pack), pack.cycles);
  EXPECT_GT(gain, 1.5);
  // Energy efficiency is roughly speedup divided by the power increase.
  EXPECT_NEAR(gain, speedup, speedup * 0.4);
}

}  // namespace
}  // namespace axipack::energy
