// Near-memory index coalescing unit, three layers of proof:
//
//   * unit tests driving a bare Coalescer with the test acting as memory —
//     duplicate merging fans one fetch out to every waiter with the data
//     and per-lane release order intact, even when memory answers lanes
//     wildly out of order;
//   * a cycle-by-cycle audit of the pending-table occupancy bound (the
//     MSHR table never exceeds `entries` live slots, and a full table
//     backpressures instead of dropping);
//   * system-level differentials — spmv/prank/sssp over the coalescer
//     on/off and across every coalesce setting and backend must stay
//     bit-correct against the workloads' golden scalar references.
#include "test_common.hpp"

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "pack/coalescer.hpp"
#include "systems/runner.hpp"
#include "systems/scenario.hpp"

namespace axipack::pack {
namespace {

constexpr std::uint64_t kBase = 0x8000'0000ull;

/// Deterministic per-address payload the fake memory serves.
std::uint32_t pattern(std::uint64_t addr) {
  return static_cast<std::uint32_t>((addr >> 2) * 2654435761u ^ 0xA5A5u);
}

/// A bare coalescer between test-owned upstream pushes and a test-modelled
/// memory on the downstream lanes.
struct Harness {
  explicit Harness(const CoalescerConfig& cfg, unsigned lanes = 4,
                   std::size_t down_req_depth = 2)
      : lanes_n(lanes) {
    std::vector<LaneIO> down;
    for (unsigned l = 0; l < lanes; ++l) {
      down_req.push_back(std::make_unique<sim::Fifo<mem::WordReq>>(
          kernel, down_req_depth, 1));
      down_resp.push_back(
          std::make_unique<sim::Fifo<mem::WordResp>>(kernel, 64, 1));
      down.push_back({down_req.back().get(), down_resp.back().get()});
    }
    co = std::make_unique<Coalescer>(kernel, std::move(down), cfg);
    up = co->upstream_lanes();
    pending.resize(lanes);
    got.resize(lanes);
    expected.resize(lanes);
  }

  /// Queues one upstream request (lane-order release is per lane).
  void expect_read(unsigned lane, std::uint64_t addr, std::uint32_t tag) {
    mem::WordReq req;
    req.addr = addr;
    req.write = false;
    req.tag = tag;
    pending[lane].push_back(req);
    expected[lane].push_back(req);
  }

  /// Queues one upstream write (pass-through entry; response is a B-ack).
  void expect_write(unsigned lane, std::uint64_t addr, std::uint32_t tag,
                    std::uint32_t wdata, std::uint8_t wstrb = 0xF) {
    mem::WordReq req;
    req.addr = addr;
    req.write = true;
    req.wdata = wdata;
    req.wstrb = wstrb;
    req.tag = tag;
    pending[lane].push_back(req);
    expected[lane].push_back(req);
  }

  /// Current memory word: written value if any store landed, else the
  /// deterministic pattern.
  std::uint32_t word_at(std::uint64_t addr) const {
    const auto it = mem_words.find(addr);
    return it == mem_words.end() ? pattern(addr) : it->second;
  }

  /// One simulated cycle: feed upstream lanes, model memory with a fixed
  /// per-lane service delay (different per lane => cross-lane reorder),
  /// collect upstream responses, audit the occupancy bound.
  void cycle(std::size_t entries_bound) {
    for (unsigned l = 0; l < lanes_n; ++l) {
      if (!pending[l].empty() && up[l].req->can_push()) {
        up[l].req->push(pending[l].front());
        pending[l].pop_front();
      }
      if (memory_on && down_req[l]->can_pop()) {
        const mem::WordReq req = down_req[l]->pop();
        mem::WordResp resp;
        if (req.write) {
          ++stores;
          std::uint32_t w = word_at(req.addr);
          for (unsigned b = 0; b < 4; ++b) {
            if (req.wstrb & (1u << b)) {
              w = (w & ~(0xFFu << (8 * b))) |
                  (req.wdata & (0xFFu << (8 * b)));
            }
          }
          mem_words[req.addr] = w;
          resp.rdata = 0;
          resp.was_write = true;
        } else {
          ++fetches;
          resp.rdata = word_at(req.addr);
          resp.was_write = false;
        }
        resp.tag = req.tag;
        // Lane-dependent latency: lane 0 answers in 2 cycles, lane 3 in 23.
        down_resp[l]->push_in(resp, 2 + 7ull * l);
      }
      while (up[l].resp->can_pop()) {
        got[l].push_back(up[l].resp->pop());
      }
    }
    EXPECT_LE(co->live_entries(), entries_bound);
    EXPECT_LE(co->stats().peak_pending, entries_bound);
    kernel.step();
  }

  /// Runs until every expected response arrived (or the deadline trips).
  bool drain(std::size_t entries_bound, sim::Cycle max_cycles = 20'000) {
    const auto done = [&] {
      for (unsigned l = 0; l < lanes_n; ++l) {
        if (got[l].size() != expected[l].size()) return false;
      }
      return true;
    };
    for (sim::Cycle c = 0; c < max_cycles && !done(); ++c) {
      cycle(entries_bound);
    }
    return done();
  }

  /// Per-lane release order, restored tags and fan-out data all match the
  /// request stream.
  void check_releases() {
    for (unsigned l = 0; l < lanes_n; ++l) {
      ASSERT_EQ(got[l].size(), expected[l].size()) << "lane " << l;
      for (std::size_t i = 0; i < expected[l].size(); ++i) {
        EXPECT_EQ(got[l][i].tag, expected[l][i].tag)
            << "lane " << l << " resp " << i;
        EXPECT_EQ(got[l][i].rdata, pattern(expected[l][i].addr))
            << "lane " << l << " resp " << i;
        EXPECT_FALSE(got[l][i].was_write) << "lane " << l << " resp " << i;
      }
    }
  }

  sim::Kernel kernel;
  unsigned lanes_n;
  std::vector<std::unique_ptr<sim::Fifo<mem::WordReq>>> down_req;
  std::vector<std::unique_ptr<sim::Fifo<mem::WordResp>>> down_resp;
  std::unique_ptr<Coalescer> co;
  std::vector<LaneIO> up;
  std::vector<std::deque<mem::WordReq>> pending;   ///< not yet pushed
  std::vector<std::vector<mem::WordReq>> expected; ///< full per-lane stream
  std::vector<std::vector<mem::WordResp>> got;
  std::uint64_t fetches = 0;  ///< downstream read words actually requested
  std::uint64_t stores = 0;   ///< downstream writes that reached memory
  std::unordered_map<std::uint64_t, std::uint32_t> mem_words;
  bool memory_on = true;
};

TEST(Coalescer, DuplicatesMergeIntoOneFetch) {
  CoalescerConfig cfg;
  cfg.entries = 8;
  cfg.window = 4;
  cfg.lane_fifo_depth = 8;
  Harness h(cfg);
  // Every lane asks for the same two words, interleaved with a private one:
  // 4 lanes x 3 requests but only 2 + 4 distinct addresses.
  const std::uint64_t shared_a = kBase + 4 * 100;
  const std::uint64_t shared_b = kBase + 4 * 200;
  for (unsigned l = 0; l < 4; ++l) {
    h.expect_read(l, shared_a, 10 + l);
    h.expect_read(l, kBase + 4 * (300 + l), 20 + l);
    h.expect_read(l, shared_b, 30 + l);
  }
  ASSERT_TRUE(h.drain(cfg.entries));
  h.check_releases();
  EXPECT_EQ(h.co->stats().unique + h.co->stats().merged, 12u);
  // At least the clearly-simultaneous duplicates merged (the first request
  // of each shared word allocates; later same-cycle arrivals merge).
  EXPECT_GT(h.co->stats().merged, 0u);
  EXPECT_EQ(h.fetches, h.co->stats().unique);
  EXPECT_LT(h.fetches, 12u);
  EXPECT_TRUE(h.co->idle());
}

TEST(Coalescer, SameWordFullFanOut) {
  // 32 requests for one word. Every request accepted while a fetch for the
  // word is in flight merges into it; an entry retires the moment its data
  // returns (MSHR semantics), so a late straggler refetches — the fetch
  // count equals the allocation count and stays a small fraction of 32,
  // and every waiter still gets the data.
  CoalescerConfig cfg;
  cfg.entries = 4;
  cfg.window = 2;
  cfg.lane_fifo_depth = 16;
  Harness h(cfg);
  const std::uint64_t addr = kBase + 4 * 4096;
  for (int i = 0; i < 32; ++i) {
    h.expect_read(i % 4u, addr, static_cast<std::uint32_t>(i));
  }
  ASSERT_TRUE(h.drain(cfg.entries));
  h.check_releases();
  EXPECT_EQ(h.co->stats().unique + h.co->stats().merged, 32u);
  EXPECT_GE(h.co->stats().merged, 24u);  // the bulk folds into the table
  EXPECT_EQ(h.fetches, h.co->stats().unique);
  EXPECT_TRUE(h.co->idle());
}

TEST(Coalescer, InOrderReleaseUnderCrossLaneReorder) {
  // Distinct addresses striped across two 2 KiB granules; the per-lane
  // memory latencies (2..23 cycles) reorder completions across lanes and
  // the grouping window reorders issue — release order per upstream lane
  // must still be exactly the request order.
  CoalescerConfig cfg;
  cfg.entries = 16;
  cfg.window = 8;
  cfg.lane_fifo_depth = 8;
  Harness h(cfg, 4, /*down_req_depth=*/1);
  for (int i = 0; i < 24; ++i) {
    const unsigned lane = static_cast<unsigned>(i) % 4u;
    // Alternate granules so window-grouping has something to chew on.
    const std::uint64_t granule = (i % 2 == 0) ? 0 : (2048 / 4);
    h.expect_read(lane, kBase + 4 * (granule + static_cast<unsigned>(i)),
                  static_cast<std::uint32_t>(i));
  }
  ASSERT_TRUE(h.drain(cfg.entries));
  h.check_releases();
  EXPECT_EQ(h.co->stats().unique, 24u);
  EXPECT_EQ(h.co->stats().merged, 0u);
  // The grouping window must have kept at least some same-granule requests
  // adjacent: strictly fewer groups than issued requests.
  EXPECT_LT(h.co->stats().row_groups, h.co->stats().unique);
}

TEST(Coalescer, PendingTableOccupancyBoundAudited) {
  // Tiny table, stalled memory: the table must clamp at `entries` live
  // slots (audited every cycle by Harness::cycle) and backpressure the
  // upstream lanes instead of dropping or overflowing; once memory turns
  // on, everything drains.
  CoalescerConfig cfg;
  cfg.entries = 3;
  cfg.window = 2;
  cfg.lane_fifo_depth = 4;
  Harness h(cfg);
  for (int i = 0; i < 40; ++i) {
    h.expect_read(static_cast<unsigned>(i) % 4u, kBase + 4 * (1000 + i * 3),
                  static_cast<std::uint32_t>(i));
  }
  h.memory_on = false;
  for (int c = 0; c < 50; ++c) h.cycle(cfg.entries);
  EXPECT_EQ(h.co->live_entries(), cfg.entries);  // clamped, not overflowed
  EXPECT_EQ(h.fetches, 0u);
  h.memory_on = true;
  ASSERT_TRUE(h.drain(cfg.entries));
  h.check_releases();
  EXPECT_EQ(h.co->stats().peak_pending, cfg.entries);
  EXPECT_EQ(h.co->stats().unique, 40u);
  EXPECT_EQ(h.fetches, 40u);
  EXPECT_TRUE(h.co->idle());
}

TEST(Coalescer, FullWordStoreForwardsToLaterReads) {
  // A queued full-strobe store services later same-word reads directly
  // (store-to-load forwarding): the reads never reach memory, count as
  // merges, and observe the store data even before the write drains.
  CoalescerConfig cfg;
  cfg.entries = 8;
  cfg.window = 4;
  cfg.lane_fifo_depth = 8;
  Harness h(cfg);
  const std::uint64_t addr = kBase + 4 * 500;
  h.memory_on = false;  // keep the write parked in the table
  h.expect_write(0, addr, 1, 0xDEADBEEFu);
  for (unsigned l = 1; l < 4; ++l) h.expect_read(l, addr, 10 + l);
  for (int c = 0; c < 40; ++c) h.cycle(cfg.entries);
  // The reads released from the forwarded data while memory was dead.
  for (unsigned l = 1; l < 4; ++l) {
    ASSERT_EQ(h.got[l].size(), 1u) << "lane " << l;
    EXPECT_EQ(h.got[l][0].rdata, 0xDEADBEEFu);
    EXPECT_FALSE(h.got[l][0].was_write);
  }
  EXPECT_EQ(h.fetches, 0u);
  EXPECT_EQ(h.co->stats().merged, 3u);
  h.memory_on = true;
  ASSERT_TRUE(h.drain(cfg.entries));
  ASSERT_EQ(h.got[0].size(), 1u);
  EXPECT_TRUE(h.got[0][0].was_write);
  EXPECT_EQ(h.stores, 1u);
  EXPECT_EQ(h.word_at(addr), 0xDEADBEEFu);
  EXPECT_TRUE(h.co->idle());
}

TEST(Coalescer, PartialStoreStallsLaterReads) {
  // A partial-strobe store cannot forward (the read needs bytes the store
  // does not carry): the same-word read stalls behind it and refetches the
  // merged word from memory afterwards.
  CoalescerConfig cfg;
  cfg.entries = 8;
  cfg.window = 4;
  cfg.lane_fifo_depth = 8;
  Harness h(cfg);
  const std::uint64_t addr = kBase + 4 * 600;
  h.expect_write(0, addr, 1, 0x0000BEEFu, /*wstrb=*/0x3);
  h.expect_read(1, addr, 2);
  ASSERT_TRUE(h.drain(cfg.entries));
  EXPECT_EQ(h.stores, 1u);
  EXPECT_EQ(h.fetches, 1u);  // the read went to memory, not the table
  EXPECT_EQ(h.co->stats().merged, 0u);
  const std::uint32_t want = (pattern(addr) & 0xFFFF0000u) | 0x0000BEEFu;
  ASSERT_EQ(h.got[1].size(), 1u);
  EXPECT_EQ(h.got[1][0].rdata, want);
  EXPECT_TRUE(h.co->idle());
}

TEST(Coalescer, WriteAfterReadStallsUntilTheReadResolves) {
  // WAR/WAW: a write behind a pending same-word access stalls in its lane
  // until the older entry resolves — the read observes pre-store data and
  // the store still lands afterwards.
  CoalescerConfig cfg;
  cfg.entries = 8;
  cfg.window = 4;
  cfg.lane_fifo_depth = 8;
  Harness h(cfg);
  const std::uint64_t addr = kBase + 4 * 700;
  h.memory_on = false;  // park the read in the table
  h.expect_read(0, addr, 1);
  h.expect_write(1, addr, 2, 0xCAFE0000u);
  for (int c = 0; c < 40; ++c) h.cycle(cfg.entries);
  EXPECT_EQ(h.co->stats().unique, 1u);  // only the read allocated
  h.memory_on = true;
  ASSERT_TRUE(h.drain(cfg.entries));
  ASSERT_EQ(h.got[0].size(), 1u);
  EXPECT_EQ(h.got[0][0].rdata, pattern(addr));  // pre-store value
  ASSERT_EQ(h.got[1].size(), 1u);
  EXPECT_TRUE(h.got[1][0].was_write);
  EXPECT_EQ(h.word_at(addr), 0xCAFE0000u);
  EXPECT_TRUE(h.co->idle());
}

TEST(Coalescer, WriteSupersedesRetainedCopy) {
  // A store to a word held as a retained read copy reclaims the slot: a
  // later read must see the store data (forwarded or refetched), never the
  // stale retained word.
  CoalescerConfig cfg;
  cfg.entries = 8;
  cfg.window = 4;
  cfg.lane_fifo_depth = 8;
  Harness h(cfg);
  const std::uint64_t addr = kBase + 4 * 800;
  h.expect_read(0, addr, 1);
  ASSERT_TRUE(h.drain(cfg.entries));  // word now retained in the table
  EXPECT_EQ(h.fetches, 1u);
  h.expect_write(1, addr, 2, 0x12345678u);
  h.expect_read(2, addr, 3);
  ASSERT_TRUE(h.drain(cfg.entries));
  ASSERT_EQ(h.got[2].size(), 1u);
  EXPECT_EQ(h.got[2][0].rdata, 0x12345678u);
  EXPECT_EQ(h.word_at(addr), 0x12345678u);
  EXPECT_TRUE(h.co->idle());
}

// ---------------------------------------------------------------- system

/// Indirect kernels stay golden-correct with the coalescer in the path,
/// across settings and memory backends; coalescer stats are consistent
/// with the fan-out accounting.
TEST(CoalescerSystem, IndirectKernelsCorrectAcrossSettingsAndBackends) {
  using sys::ScenarioRegistry;
  const wl::KernelKind kernels[] = {wl::KernelKind::spmv,
                                    wl::KernelKind::prank};
  const char* scenarios[] = {
      "pack-dram",              // coalescer off (baseline wiring)
      "pack-dram-coalesce",     // on, default entries/window
      "pack-256-dram-x4-g1",    // tiny table, FIFO issue
      "pack-256-dram-x16-g8",   // small table via the parametric grammar
      "pack-256-dram-x64-g32",  // large table, wide window
      "pack-128-dram-x8-g4",    // narrower bus
  };
  for (const auto kernel : kernels) {
    for (const char* scenario : scenarios) {
      auto cfg = sys::plan_workload(kernel, scenario);
      cfg.n = 96;
      cfg.nnz_per_row = 24;
      const sys::RunResult r = sys::run_workload(scenario, cfg);
      ASSERT_TRUE(r.correct) << scenario << " " << wl::kernel_name(kernel)
                             << ": " << r.error;
      const bool coalesced = std::string(scenario) != "pack-dram";
      if (coalesced) {
        EXPECT_GT(r.coalesce_unique, 0u)
            << scenario << " " << wl::kernel_name(kernel);
        // Fan-out accounting over the four coalescing units: every element
        // word requested by the gather lanes passes the element unit and
        // is counted there exactly once as unique or merged, so the
        // aggregate (which also covers the index/strided/base streams)
        // bounds the element-word count from above.
        EXPECT_GE(r.coalesce_unique + r.coalesce_merged,
                  r.indirect_elem_words)
            << scenario << " " << wl::kernel_name(kernel);
        // Occupancy audit: peak pending never exceeds the configured
        // pending-table capacity (default 512; -x{E} overrides it).
        const std::string s(scenario);
        const std::uint64_t cap = s == "pack-256-dram-x4-g1"  ? 4u
                                  : s == "pack-256-dram-x16-g8" ? 16u
                                  : s == "pack-256-dram-x64-g32" ? 64u
                                  : s == "pack-128-dram-x8-g4"   ? 8u
                                                                 : 512u;
        EXPECT_LE(r.coalesce_peak_pending, cap) << scenario;
      } else {
        EXPECT_EQ(r.coalesce_unique, 0u);
        EXPECT_EQ(r.coalesce_merged, 0u);
      }
      EXPECT_GT(r.indirect_elem_words, 0u) << scenario;
      EXPECT_GT(r.indirect_idx_words, 0u) << scenario;
    }
  }
}

TEST(CoalescerSystem, SramBackendsStayCorrectWithCoalescer) {
  // The unit is backend-agnostic: banked SRAM and ideal memory behind a
  // coalesced adapter must stay golden-correct too (locality key falls
  // back to the address-granule default).
  for (const char* base : {"pack-256-17b", "pack-256-idealmem"}) {
    for (const auto kernel : {wl::KernelKind::spmv, wl::KernelKind::sssp}) {
      sys::SystemBuilder b = sys::ScenarioRegistry::instance().builder(base);
      b.coalescer(true, 16, 8);
      auto cfg = sys::plan_workload(kernel, base);
      cfg.n = 96;
      cfg.nnz_per_row = 24;
      const sys::RunResult r = sys::run_workload(b, cfg);
      ASSERT_TRUE(r.correct) << base << " " << wl::kernel_name(kernel)
                             << ": " << r.error;
      EXPECT_GT(r.coalesce_unique, 0u) << base;
    }
  }
}

TEST(CoalescerSystem, ScenarioGrammarAcceptsAndRejects) {
  const auto& reg = sys::ScenarioRegistry::instance();
  EXPECT_TRUE(reg.contains("pack-256-dram-x16"));
  EXPECT_TRUE(reg.contains("pack-64-dram-x8-g4"));
  EXPECT_TRUE(reg.contains("pack-128-dram-x32-g16-w8"));
  EXPECT_TRUE(reg.contains("base-256-dram-g4"));
  EXPECT_TRUE(reg.contains("pack-dram-coalesce"));
  EXPECT_FALSE(reg.contains("pack-256-dram-x0"));      // zero entries
  EXPECT_FALSE(reg.contains("pack-256-dram-g0"));      // zero window
  EXPECT_FALSE(reg.contains("pack-256-dram-x4-x8"));   // duplicate knob
  EXPECT_FALSE(reg.contains("pack-256-dram-x"));       // missing value
  EXPECT_FALSE(reg.contains("pack-256-dram-z4"));      // unknown knob
}

}  // namespace
}  // namespace axipack::pack
