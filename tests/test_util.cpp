// Unit tests for util: bit math, RNG determinism, table formatting.
#include "test_common.hpp"

#include <set>
#include <sstream>

#include "util/bits.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace axipack::util {
namespace {

TEST(Bits, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0);
  EXPECT_EQ(ceil_div(1, 4), 1);
  EXPECT_EQ(ceil_div(4, 4), 1);
  EXPECT_EQ(ceil_div(5, 4), 2);
  EXPECT_EQ(ceil_div<std::uint64_t>(1ull << 40, 3), ((1ull << 40) + 2) / 3);
}

TEST(Bits, RoundUpDown) {
  EXPECT_EQ(round_up(0, 32), 0);
  EXPECT_EQ(round_up(1, 32), 32);
  EXPECT_EQ(round_up(32, 32), 32);
  EXPECT_EQ(round_down(31, 32), 0);
  EXPECT_EQ(round_down(33, 32), 32);
  // Non-power-of-two alignments work too.
  EXPECT_EQ(round_up(10, 17), 17);
  EXPECT_EQ(round_down(35, 17), 34);
}

TEST(Bits, Pow2AndLog) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(17));
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(32), 5u);
  EXPECT_EQ(log2_ceil(1), 0u);
  EXPECT_EQ(log2_ceil(2), 1u);
  EXPECT_EQ(log2_ceil(3), 2u);
  EXPECT_EQ(log2_ceil(8), 3u);
  EXPECT_EQ(log2_ceil(9), 4u);
}

TEST(Bits, Primality) {
  // The paper's bank counts.
  EXPECT_TRUE(is_prime(11));
  EXPECT_TRUE(is_prime(17));
  EXPECT_TRUE(is_prime(31));
  EXPECT_FALSE(is_prime(8));
  EXPECT_FALSE(is_prime(16));
  EXPECT_FALSE(is_prime(32));
  EXPECT_FALSE(is_prime(1));
}

TEST(Bits, AxSize) {
  EXPECT_EQ(axsize_of_bytes(4), 2u);
  EXPECT_EQ(bytes_of_axsize(5), 32u);
  EXPECT_EQ(bytes_of_axsize(axsize_of_bytes(8)), 8u);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const float u = rng.uniform();
    EXPECT_GE(u, 0.0f);
    EXPECT_LT(u, 1.0f);
  }
}

TEST(Rng, SampleWithoutReplacement) {
  Rng rng(11);
  const auto s = rng.sample_without_replacement(100, 30);
  ASSERT_EQ(s.size(), 30u);
  for (std::size_t i = 1; i < s.size(); ++i) {
    EXPECT_LT(s[i - 1], s[i]);  // sorted and distinct
  }
  for (auto v : s) EXPECT_LT(v, 100u);
}

TEST(Rng, SampleFullRange) {
  Rng rng(13);
  const auto s = rng.sample_without_replacement(16, 16);
  ASSERT_EQ(s.size(), 16u);
  for (std::uint32_t i = 0; i < 16; ++i) EXPECT_EQ(s[i], i);
}

TEST(Table, FormatsRows) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(1.5, 1);
  t.row().cell("b").cell(std::uint64_t{42});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, PercentFormat) {
  EXPECT_EQ(fmt_pct(0.87), "87.0%");
  EXPECT_EQ(fmt_pct(0.395), "39.5%");
  EXPECT_EQ(fmt(5.4, 1), "5.4");
}

}  // namespace
}  // namespace axipack::util
