// Tests of the simulation kernel's registered-FIFO semantics — everything
// downstream (bus modeling, bank conflicts) relies on these properties.
#include <gtest/gtest.h>

#include "sim/kernel.hpp"
#include "sim/probe.hpp"

namespace axipack::sim {
namespace {

TEST(Fifo, PushNotVisibleSameCycle) {
  Kernel k;
  Fifo<int> f(k, 4);
  EXPECT_FALSE(f.can_pop());
  f.push(1);
  EXPECT_FALSE(f.can_pop());  // registered: visible next cycle
  k.step();
  ASSERT_TRUE(f.can_pop());
  EXPECT_EQ(f.front(), 1);
}

TEST(Fifo, LatencyDelaysVisibility) {
  Kernel k;
  Fifo<int> f(k, 8, 3);
  f.push(42);
  k.step();
  EXPECT_FALSE(f.can_pop());
  k.step();
  EXPECT_FALSE(f.can_pop());
  k.step();
  ASSERT_TRUE(f.can_pop());
  EXPECT_EQ(f.pop(), 42);
}

TEST(Fifo, PopFreesSpaceNextCycle) {
  Kernel k;
  Fifo<int> f(k, 1);
  f.push(1);
  k.step();
  EXPECT_FALSE(f.can_push());  // full
  EXPECT_EQ(f.pop(), 1);
  // Space freed by the pop is not available in the same cycle.
  EXPECT_FALSE(f.can_push());
  k.step();
  EXPECT_TRUE(f.can_push());
}

TEST(Fifo, DepthTwoSustainsFullThroughput) {
  // A depth-2 FIFO must sustain one item per cycle in steady state.
  Kernel k;
  Fifo<int> f(k, 2);
  int pushed = 0;
  int popped = 0;
  for (int cycle = 0; cycle < 100; ++cycle) {
    if (f.can_pop()) {
      f.pop();
      ++popped;
    }
    if (f.can_push()) {
      f.push(pushed++);
    }
    k.step();
  }
  EXPECT_GE(popped, 97);  // minus pipeline fill
}

TEST(Fifo, DepthOneHalvesThroughput) {
  Kernel k;
  Fifo<int> f(k, 1);
  int popped = 0;
  for (int cycle = 0; cycle < 100; ++cycle) {
    if (f.can_pop()) {
      f.pop();
      ++popped;
    }
    if (f.can_push()) f.push(cycle);
    k.step();
  }
  EXPECT_LE(popped, 51);
  EXPECT_GE(popped, 48);
}

TEST(Fifo, FifoOrderPreserved) {
  Kernel k;
  Fifo<int> f(k, 16);
  for (int i = 0; i < 10; ++i) f.push(i);
  k.step();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(f.pop(), i);
}

TEST(Kernel, RunUntilPredicate) {
  Kernel k;
  const bool fired = k.run_until([&] { return k.now() == 10; }, 100);
  EXPECT_TRUE(fired);
  EXPECT_EQ(k.now(), 10u);
}

TEST(Kernel, RunUntilTimeout) {
  Kernel k;
  const bool fired = k.run_until([] { return false; }, 50);
  EXPECT_FALSE(fired);
  EXPECT_EQ(k.now(), 50u);
}

class TickCounter final : public Component {
 public:
  int ticks = 0;
  void tick() override { ++ticks; }
};

TEST(Kernel, TicksComponentsEachCycle) {
  Kernel k;
  TickCounter c;
  k.add(c);
  k.run(25);
  EXPECT_EQ(c.ticks, 25);
}

TEST(Counters, DiffAndGet) {
  Counters a;
  a.add("x", 5);
  a.add("y");
  Counters snapshot = a;
  a.add("x", 3);
  const Counters d = a.diff(snapshot);
  EXPECT_EQ(d.get("x"), 3u);
  EXPECT_EQ(d.get("y"), 0u);
  EXPECT_EQ(d.get("missing"), 0u);
}

// Order-independence: two producer/consumer chains registered in opposite
// orders must produce identical timing.
class Producer final : public Component {
 public:
  Producer(Fifo<int>& out) : out_(out) {}
  void tick() override {
    if (out_.can_push()) out_.push(n_++);
  }

 private:
  Fifo<int>& out_;
  int n_ = 0;
};

class Consumer final : public Component {
 public:
  Consumer(Fifo<int>& in) : in_(in) {}
  void tick() override {
    if (in_.can_pop()) {
      in_.pop();
      ++received;
    }
  }
  int received = 0;

 private:
  Fifo<int>& in_;
};

TEST(Kernel, TickOrderIndependent) {
  int received_a;
  int received_b;
  {
    Kernel k;
    Fifo<int> f(k, 2);
    Producer p(f);
    Consumer c(f);
    k.add(p);
    k.add(c);
    k.run(50);
    received_a = c.received;
  }
  {
    Kernel k;
    Fifo<int> f(k, 2);
    Producer p(f);
    Consumer c(f);
    k.add(c);  // consumer ticked first this time
    k.add(p);
    k.run(50);
    received_b = c.received;
  }
  EXPECT_EQ(received_a, received_b);
}

}  // namespace
}  // namespace axipack::sim
