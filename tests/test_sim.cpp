// Tests of the simulation kernel's registered-FIFO semantics — everything
// downstream (bus modeling, bank conflicts) relies on these properties —
// plus the ring-buffer storage (randomized against a reference deque
// model) and the activity-gating machinery (sleep/wake, fast-forward).
#include "test_common.hpp"

#include <deque>

#include "sim/kernel.hpp"
#include "sim/probe.hpp"
#include "util/rng.hpp"

namespace axipack::sim {
namespace {

TEST(Fifo, PushNotVisibleSameCycle) {
  Kernel k;
  Fifo<int> f(k, 4);
  EXPECT_FALSE(f.can_pop());
  f.push(1);
  EXPECT_FALSE(f.can_pop());  // registered: visible next cycle
  k.step();
  ASSERT_TRUE(f.can_pop());
  EXPECT_EQ(f.front(), 1);
}

TEST(Fifo, LatencyDelaysVisibility) {
  Kernel k;
  Fifo<int> f(k, 8, 3);
  f.push(42);
  k.step();
  EXPECT_FALSE(f.can_pop());
  k.step();
  EXPECT_FALSE(f.can_pop());
  k.step();
  ASSERT_TRUE(f.can_pop());
  EXPECT_EQ(f.pop(), 42);
}

TEST(Fifo, PopFreesSpaceNextCycle) {
  Kernel k;
  Fifo<int> f(k, 1);
  f.push(1);
  k.step();
  EXPECT_FALSE(f.can_push());  // full
  EXPECT_EQ(f.pop(), 1);
  // Space freed by the pop is not available in the same cycle.
  EXPECT_FALSE(f.can_push());
  k.step();
  EXPECT_TRUE(f.can_push());
}

TEST(Fifo, DepthTwoSustainsFullThroughput) {
  // A depth-2 FIFO must sustain one item per cycle in steady state.
  Kernel k;
  Fifo<int> f(k, 2);
  int pushed = 0;
  int popped = 0;
  for (int cycle = 0; cycle < 100; ++cycle) {
    if (f.can_pop()) {
      f.pop();
      ++popped;
    }
    if (f.can_push()) {
      f.push(pushed++);
    }
    k.step();
  }
  EXPECT_GE(popped, 97);  // minus pipeline fill
}

TEST(Fifo, DepthOneHalvesThroughput) {
  Kernel k;
  Fifo<int> f(k, 1);
  int popped = 0;
  for (int cycle = 0; cycle < 100; ++cycle) {
    if (f.can_pop()) {
      f.pop();
      ++popped;
    }
    if (f.can_push()) f.push(cycle);
    k.step();
  }
  EXPECT_LE(popped, 51);
  EXPECT_GE(popped, 48);
}

TEST(Fifo, FifoOrderPreserved) {
  Kernel k;
  Fifo<int> f(k, 16);
  for (int i = 0; i < 10; ++i) f.push(i);
  k.step();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(f.pop(), i);
}

TEST(Fifo, PeekReadsPastTheHeadWithoutConsuming) {
  Kernel k;
  Fifo<int> f(k, 8);
  for (int i = 0; i < 5; ++i) f.push(10 + i);
  k.step();
  ASSERT_EQ(f.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(f.peek(i), 10 + static_cast<int>(i));
  }
  EXPECT_EQ(f.front(), 10);  // nothing consumed
  EXPECT_EQ(f.pop(), 10);
  EXPECT_EQ(f.peek(0), 11);  // peek tracks the head after pops
}

TEST(Fifo, VisibleCountIsTheVisibleHeadPrefix) {
  Kernel k;
  Fifo<int> f(k, 8);
  EXPECT_EQ(f.visible_count(k.now()), 0u);
  f.push(1);
  f.push(2);
  EXPECT_EQ(f.visible_count(k.now()), 0u);  // registered: next cycle
  k.step();
  EXPECT_EQ(f.visible_count(k.now()), 2u);
  // A slow item gates everything pushed behind it (FIFO delivery), even
  // items whose own latency has already elapsed.
  f.push_in(3, 5);
  f.push_in(4, 1);
  k.step();
  EXPECT_EQ(f.visible_count(k.now()), 2u);
  k.run(4);
  EXPECT_EQ(f.visible_count(k.now()), 4u);
  // Pops shrink the visible prefix from the front.
  f.pop();
  EXPECT_EQ(f.visible_count(k.now()), 3u);
  EXPECT_EQ(f.peek(2), 4);
}

TEST(Fifo, TryPushTryPop) {
  Kernel k;
  Fifo<int> f(k, 2);
  EXPECT_TRUE(f.try_push(7));
  EXPECT_TRUE(f.try_push(8));
  EXPECT_FALSE(f.try_push(9));  // full
  EXPECT_FALSE(f.try_pop().has_value());  // nothing visible yet
  k.step();
  const auto a = f.try_pop();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 7);
  EXPECT_FALSE(f.try_push(9));  // space freed by pop arrives next cycle
  k.step();
  EXPECT_TRUE(f.try_push(9));
  EXPECT_EQ(f.pop(), 8);
}

TEST(Fifo, UnboundedGrowsBeyondInitialStorage) {
  Kernel k;
  UnboundedFifo<int> f(k);
  for (int i = 0; i < 1000; ++i) f.push(i);
  EXPECT_EQ(f.size(), 1000u);
  k.step();
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(f.pop(), i);
  EXPECT_TRUE(f.empty());
}

// Reference model of the registered-FIFO semantics, backed by a deque —
// the pre-ring-buffer implementation, kept as the oracle.
class RefFifo {
 public:
  RefFifo(std::size_t capacity, Cycle latency)
      : capacity_(capacity), latency_(latency) {}

  bool can_push() const { return q_.size() + popped_ < capacity_; }
  void push(int v) { q_.push_back({v, now_ + latency_}); }
  bool can_pop() const { return !q_.empty() && q_.front().vis <= now_; }
  int front() const { return q_.front().v; }
  int pop() {
    const int v = q_.front().v;
    q_.pop_front();
    ++popped_;
    return v;
  }
  std::size_t size() const { return q_.size(); }
  void step() {
    popped_ = 0;
    ++now_;
  }

 private:
  struct Item {
    int v;
    Cycle vis;
  };
  std::size_t capacity_;
  Cycle latency_;
  std::deque<Item> q_;
  std::size_t popped_ = 0;
  Cycle now_ = 0;
};

TEST(Fifo, RandomizedStressAgainstDequeModel) {
  util::Rng rng(0xF1F0);
  const std::size_t caps[] = {1, 2, 3, 5, 8, 64};
  const Cycle lats[] = {1, 2, 3, 7};
  for (const std::size_t cap : caps) {
    for (const Cycle lat : lats) {
      Kernel k;
      Fifo<int> dut(k, cap, lat);
      RefFifo ref(cap, lat);
      int next = 0;
      for (int cycle = 0; cycle < 500; ++cycle) {
        // Random interleave of pushes and pops within the cycle.
        for (int op = 0; op < 4; ++op) {
          ASSERT_EQ(dut.can_push(), ref.can_push())
              << "cap " << cap << " lat " << lat << " cycle " << cycle;
          ASSERT_EQ(dut.can_pop(), ref.can_pop());
          ASSERT_EQ(dut.size(), ref.size());
          if (rng.below(2) == 0 && ref.can_push()) {
            dut.push(next);
            ref.push(next);
            ++next;
          }
          if (rng.below(2) == 0 && ref.can_pop()) {
            ASSERT_EQ(dut.front(), ref.front());
            ASSERT_EQ(dut.pop(), ref.pop());
          }
        }
        k.step();
        ref.step();
      }
    }
  }
}

TEST(Kernel, RunUntilPredicate) {
  Kernel k;
  const bool fired = k.run_until([&] { return k.now() == 10; }, 100);
  EXPECT_TRUE(fired);
  EXPECT_EQ(k.now(), 10u);
}

TEST(Kernel, RunUntilTimeout) {
  Kernel k;
  const bool fired = k.run_until([] { return false; }, 50);
  EXPECT_FALSE(fired);
  EXPECT_EQ(k.now(), 50u);
}

class TickCounter final : public Component {
 public:
  int ticks = 0;
  void tick() override { ++ticks; }
};

TEST(Kernel, TicksComponentsEachCycle) {
  Kernel k;
  TickCounter c;
  k.add(c);
  k.run(25);
  EXPECT_EQ(c.ticks, 25);
}

TEST(Counters, DiffAndGet) {
  Counters a;
  a.add("x", 5);
  a.add("y");
  Counters snapshot = a;
  a.add("x", 3);
  const Counters d = a.diff(snapshot);
  EXPECT_EQ(d.get("x"), 3u);
  EXPECT_EQ(d.get("y"), 0u);
  EXPECT_EQ(d.get("missing"), 0u);
}

// Order-independence: two producer/consumer chains registered in opposite
// orders must produce identical timing.
class Producer final : public Component {
 public:
  Producer(Fifo<int>& out) : out_(out) {}
  void tick() override {
    if (out_.can_push()) out_.push(n_++);
  }

 private:
  Fifo<int>& out_;
  int n_ = 0;
};

class Consumer final : public Component {
 public:
  Consumer(Fifo<int>& in) : in_(in) {}
  void tick() override {
    if (in_.can_pop()) {
      in_.pop();
      ++received;
    }
  }
  int received = 0;

 private:
  Fifo<int>& in_;
};

TEST(Kernel, RunUntilReportsCyclesConsumed) {
  Kernel k;
  const RunStatus hit = k.run_until([&] { return k.now() == 10; }, 100);
  EXPECT_TRUE(hit.completed);
  EXPECT_EQ(hit.cycles, 10u);
  const RunStatus timeout = k.run_until([] { return false; }, 25);
  EXPECT_FALSE(timeout.completed);
  EXPECT_EQ(timeout.cycles, 25u);
  EXPECT_EQ(k.now(), 35u);
}

// A gate-aware producer/consumer pair: the producer emits a fixed schedule
// then goes quiescent; the consumer sleeps between arrivals.
class SleepyConsumer final : public Component {
 public:
  SleepyConsumer(Kernel& k, Fifo<int>& in) : in_(in) {
    k.add(*this);
    k.subscribe(*this, in);
  }
  void tick() override {
    while (in_.can_pop()) {
      in_.pop();
      ++received;
    }
  }
  bool quiescent() const override { return true; }
  int received = 0;

 private:
  Fifo<int>& in_;
};

TEST(Kernel, GatedMatchesNaiveWithSleepingConsumer) {
  // The same schedule must complete in the same number of cycles whether
  // the consumer sleeps through the latency windows or naive-ticks.
  auto run_mode = [](bool gating) {
    Kernel k;
    Fifo<int> f(k, 8, /*latency=*/25);
    k.set_gating(gating);
    SleepyConsumer consumer(k, f);
    f.push(1);
    f.push(2);
    const RunStatus status = k.run_until(
        [&] { return consumer.received == 2; }, 1'000,
        Kernel::PredKind::pure);
    EXPECT_TRUE(status.completed);
    return status.cycles;
  };
  const Cycle gated = run_mode(true);
  const Cycle naive = run_mode(false);
  EXPECT_EQ(gated, naive);
  // The latency window itself is fast-forwarded, not spun through, but the
  // *simulated* completion time must still be latency + 1.
  EXPECT_EQ(gated, 26u);
}

TEST(Kernel, FastForwardSkipsDeadCyclesInRun) {
  Kernel k;
  Fifo<int> f(k, 4, /*latency=*/40);
  SleepyConsumer consumer(k, f);
  f.push(5);
  k.run(100);  // internally fast-forwards; externally 100 cycles elapse
  EXPECT_EQ(k.now(), 100u);
  EXPECT_EQ(consumer.received, 1);
}

TEST(Kernel, TickOrderIndependent) {
  int received_a;
  int received_b;
  {
    Kernel k;
    Fifo<int> f(k, 2);
    Producer p(f);
    Consumer c(f);
    k.add(p);
    k.add(c);
    k.run(50);
    received_a = c.received;
  }
  {
    Kernel k;
    Fifo<int> f(k, 2);
    Producer p(f);
    Consumer c(f);
    k.add(c);  // consumer ticked first this time
    k.add(p);
    k.run(50);
    received_b = c.received;
  }
  EXPECT_EQ(received_a, received_b);
}

}  // namespace
}  // namespace axipack::sim
