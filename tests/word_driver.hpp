// Shared word-port drive loop for memory-model tests (test_dram,
// test_differential): replays per-port request lists against any
// WordMemory as fast as backpressure allows and collects every response
// in arrival order.
#pragma once

#include <vector>

#include "mem/word.hpp"
#include "sim/kernel.hpp"

namespace axipack::mem::testutil {

/// Pushes each port's pending requests whenever its request Fifo accepts,
/// drains all responses into `responses[port]`, and steps `kernel` until
/// every request has been answered or `max_cycles` elapse. `responses` is
/// reset on entry. Returns true when fully drained (false = a scheduler
/// deadlock or an unreasonably slow configuration).
inline bool replay_word_requests(
    sim::Kernel& kernel, WordMemory& mem,
    const std::vector<std::vector<WordReq>>& reqs,
    std::vector<std::vector<WordResp>>& responses, sim::Cycle max_cycles) {
  const unsigned ports = mem.num_ports();
  std::vector<std::size_t> next(ports, 0);
  std::size_t outstanding = 0;
  for (const auto& q : reqs) outstanding += q.size();
  responses.assign(ports, {});
  const sim::Cycle deadline = kernel.now() + max_cycles;
  while (outstanding > 0 && kernel.now() < deadline) {
    for (unsigned p = 0; p < ports; ++p) {
      WordPort& port = mem.port(p);
      if (next[p] < reqs[p].size() && port.req.can_push()) {
        port.req.push(reqs[p][next[p]]);
        ++next[p];
      }
      while (port.resp.can_pop()) {
        responses[p].push_back(port.resp.pop());
        --outstanding;
      }
    }
    kernel.step();
  }
  return outstanding == 0;
}

}  // namespace axipack::mem::testutil
