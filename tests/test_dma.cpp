// DMA engine tests: descriptor wire format, gather/scatter correctness in
// pack and narrow modes, in-memory descriptor chains, streaming overlap,
// and the "pack never slower" property.
#include "test_common.hpp"

#include <cstring>
#include <memory>
#include <numeric>
#include <tuple>
#include <vector>

#include "dma/descriptor.hpp"
#include "dma/engine.hpp"
#include "mem/backing_store.hpp"
#include "sim/fault.hpp"
#include "systems/builder.hpp"
#include "systems/system.hpp"

namespace axipack {
namespace {

using dma::Descriptor;
using dma::DmaConfig;
using dma::DmaEngine;
using dma::Pattern;

constexpr std::uint64_t kMemBase = 0x8000'0000ull;

// ------------------------------------------------------------ wire format

class DescriptorRoundTrip
    : public ::testing::TestWithParam<std::tuple<Pattern::Kind,
                                                 Pattern::Kind>> {};

TEST_P(DescriptorRoundTrip, SurvivesMemorySerialization) {
  const auto [src_kind, dst_kind] = GetParam();
  mem::BackingStore store(kMemBase, 1 << 20);

  auto make_pattern = [](Pattern::Kind kind, std::uint64_t salt) {
    switch (kind) {
      case Pattern::Kind::contiguous:
        return Pattern::contiguous(kMemBase + 0x1000 + salt);
      case Pattern::Kind::strided:
        return Pattern::strided(kMemBase + 0x2000 + salt, -48);
      case Pattern::Kind::indirect:
        return Pattern::indirect(kMemBase + 0x3000 + salt,
                                 kMemBase + 0x4000 + salt, 16);
    }
    return Pattern{};
  };

  Descriptor d;
  d.src = make_pattern(src_kind, 4);
  d.dst = make_pattern(dst_kind, 512);
  d.elem_bytes = 8;
  d.num_elems = 12345;
  d.next = kMemBase + 0x8000;

  const std::uint64_t addr = store.alloc(dma::kDescriptorBytes, 64);
  dma::write_descriptor(store, addr, d);
  std::uint8_t raw[dma::kDescriptorBytes];
  store.read(addr, raw, sizeof raw);
  const auto back = dma::parse_descriptor(raw);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, d);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, DescriptorRoundTrip,
    ::testing::Combine(::testing::Values(Pattern::Kind::contiguous,
                                         Pattern::Kind::strided,
                                         Pattern::Kind::indirect),
                       ::testing::Values(Pattern::Kind::contiguous,
                                         Pattern::Kind::strided,
                                         Pattern::Kind::indirect)));

TEST(DescriptorFormat, MalformedFlagsRejected) {
  std::uint8_t raw[dma::kDescriptorBytes] = {};
  std::uint32_t flags = 0x3;  // src kind 3: invalid
  std::memcpy(raw, &flags, 4);
  EXPECT_FALSE(dma::parse_descriptor(raw).has_value());

  flags = 0x0;  // elem_bytes code 0 (= 1 byte): below the 4-byte minimum
  std::memcpy(raw, &flags, 4);
  EXPECT_FALSE(dma::parse_descriptor(raw).has_value());
}

TEST(DescriptorFormat, ChainLinksInOrder) {
  mem::BackingStore store(kMemBase, 1 << 20);
  std::vector<Descriptor> descs(3);
  for (std::size_t i = 0; i < 3; ++i) {
    descs[i].src = Pattern::contiguous(kMemBase + 0x100 * i);
    descs[i].dst = Pattern::contiguous(kMemBase + 0x10000 + 0x100 * i);
    descs[i].elem_bytes = 4;
    descs[i].num_elems = 8 + i;
  }
  const std::uint64_t head = dma::build_chain(store, descs);

  std::uint64_t addr = head;
  for (std::size_t i = 0; i < 3; ++i) {
    std::uint8_t raw[dma::kDescriptorBytes];
    store.read(addr, raw, sizeof raw);
    const auto d = dma::parse_descriptor(raw);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->num_elems, 8 + i);
    if (i + 1 < 3) {
      ASSERT_NE(d->next, 0u);
      addr = d->next;
    } else {
      EXPECT_EQ(d->next, 0u);
    }
  }
}

// ------------------------------------------------------------ end-to-end

/// DMA engine -> AXI-Pack adapter -> banked memory (bare fabric, no
/// monitor hop), assembled through SystemBuilder.
class DmaHarness {
 public:
  explicit DmaHarness(bool use_pack, unsigned bus_bytes = 32,
                      unsigned banks = 17)
      : DmaHarness(make_config(use_pack, bus_bytes), banks) {}

  explicit DmaHarness(const DmaConfig& dc, unsigned banks = 17) {
    sys::SystemBuilder b;
    b.bus_bits(dc.bus_bytes * 8)
        .mem_region(kMemBase, 16 << 20)
        .banks(banks)
        .queue_depth(4)
        .monitor(false);
    b.attach_dma(dc);
    system_ = b.build();
  }

  static DmaConfig make_config(bool use_pack, unsigned bus_bytes) {
    DmaConfig dc;
    dc.bus_bytes = bus_bytes;
    dc.use_pack = use_pack;
    return dc;
  }

  mem::BackingStore& store() { return system_->store(); }
  DmaEngine& engine() { return system_->dma(0); }

  /// Runs until the engine and adapter drain; returns elapsed cycles.
  std::uint64_t run(std::uint64_t max_cycles = 1'000'000) {
    const std::uint64_t start = system_->kernel().now();
    const bool ok = system_->run_until_drained(max_cycles);
    EXPECT_TRUE(ok) << "DMA did not drain";
    return system_->kernel().now() - start;
  }

 private:
  std::unique_ptr<sys::System> system_;
};

/// Fills [addr, addr + n*4) with distinct u32 values derived from `seed`.
void fill_words(mem::BackingStore& store, std::uint64_t addr, std::uint64_t n,
                std::uint32_t seed) {
  for (std::uint64_t i = 0; i < n; ++i) {
    store.write_u32(addr + 4 * i, seed * 0x9E3779B9u + std::uint32_t(i));
  }
}

TEST(DmaEngine, ContiguousCopy) {
  DmaHarness h(/*use_pack=*/true);
  const std::uint64_t src = h.store().alloc(4096);
  const std::uint64_t dst = h.store().alloc(4096);
  fill_words(h.store(), src, 1024, 7);

  Descriptor d;
  d.src = Pattern::contiguous(src);
  d.dst = Pattern::contiguous(dst);
  d.elem_bytes = 4;
  d.num_elems = 1024;
  h.engine().push(d);
  h.run();

  for (std::uint64_t i = 0; i < 1024; ++i) {
    ASSERT_EQ(h.store().read_u32(dst + 4 * i), h.store().read_u32(src + 4 * i))
        << "word " << i;
  }
  EXPECT_EQ(h.engine().stats().descriptors_done, 1u);
  EXPECT_EQ(h.engine().stats().bytes_moved, 4096u);
}

TEST(DmaEngine, StreamsThroughBoundedBuffer) {
  // The staging buffer (64 words) is far smaller than the transfer (4096
  // words): completion proves writes drain the buffer while reads still
  // stream, i.e. the engine pipelines rather than load-all-then-store-all.
  // The copy is bank-bandwidth-bound (reads and writes share the n word
  // ports), so the cycle floor is ~2 cycles/beat; allow modest slack.
  DmaConfig dc = DmaHarness::make_config(/*use_pack=*/true, 32);
  dc.buffer_words = 64;
  DmaHarness h(dc);
  const std::uint64_t words = 4096;
  const std::uint64_t src = h.store().alloc(words * 4, 64);
  const std::uint64_t dst = h.store().alloc(words * 4, 64);
  fill_words(h.store(), src, words, 3);

  Descriptor d;
  d.src = Pattern::contiguous(src);
  d.dst = Pattern::contiguous(dst);
  d.elem_bytes = 4;
  d.num_elems = words;
  h.engine().push(d);
  const std::uint64_t cycles = h.run();

  for (std::uint64_t i = 0; i < words; ++i) {
    ASSERT_EQ(h.store().read_u32(dst + 4 * i), h.store().read_u32(src + 4 * i));
  }
  const std::uint64_t beats = words / 8;  // 256-bit bus
  EXPECT_LT(cycles, beats * 5 / 2) << "streaming collapsed";
}

TEST(DmaEngine, StridedGatherToContiguous) {
  for (const bool use_pack : {true, false}) {
    DmaHarness h(use_pack);
    const std::uint64_t n = 256;
    const std::int64_t stride = 40;  // 10 words
    const std::uint64_t src = h.store().alloc(n * stride, 64);
    const std::uint64_t dst = h.store().alloc(n * 4, 64);
    for (std::uint64_t i = 0; i < n; ++i) {
      h.store().write_u32(src + i * stride, 0xA000'0000u + std::uint32_t(i));
    }

    Descriptor d;
    d.src = Pattern::strided(src, stride);
    d.dst = Pattern::contiguous(dst);
    d.elem_bytes = 4;
    d.num_elems = n;
    h.engine().push(d);
    h.run();

    for (std::uint64_t i = 0; i < n; ++i) {
      ASSERT_EQ(h.store().read_u32(dst + 4 * i), 0xA000'0000u + i)
          << (use_pack ? "pack" : "narrow") << " element " << i;
    }
  }
}

TEST(DmaEngine, ContiguousToStridedScatter) {
  for (const bool use_pack : {true, false}) {
    DmaHarness h(use_pack);
    const std::uint64_t n = 128;
    const std::int64_t stride = 24;
    const std::uint64_t src = h.store().alloc(n * 4, 64);
    const std::uint64_t dst = h.store().alloc(n * stride, 64);
    fill_words(h.store(), src, n, 11);

    Descriptor d;
    d.src = Pattern::contiguous(src);
    d.dst = Pattern::strided(dst, stride);
    d.elem_bytes = 4;
    d.num_elems = n;
    h.engine().push(d);
    h.run();

    for (std::uint64_t i = 0; i < n; ++i) {
      ASSERT_EQ(h.store().read_u32(dst + i * stride),
                h.store().read_u32(src + 4 * i))
          << (use_pack ? "pack" : "narrow") << " element " << i;
    }
  }
}

TEST(DmaEngine, NegativeStrideGather) {
  DmaHarness h(/*use_pack=*/true);
  const std::uint64_t n = 64;
  const std::uint64_t src = h.store().alloc(n * 8, 64);
  const std::uint64_t dst = h.store().alloc(n * 4, 64);
  for (std::uint64_t i = 0; i < n; ++i) {
    h.store().write_u32(src + i * 8, std::uint32_t(1000 + i));
  }

  Descriptor d;
  // Walk the array backwards from its last element.
  d.src = Pattern::strided(src + (n - 1) * 8, -8);
  d.dst = Pattern::contiguous(dst);
  d.elem_bytes = 4;
  d.num_elems = n;
  h.engine().push(d);
  h.run();

  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(h.store().read_u32(dst + 4 * i), 1000 + (n - 1 - i));
  }
}

TEST(DmaEngine, WideElementGather) {
  // 16-byte elements move intact through the packed datapath.
  DmaHarness h(/*use_pack=*/true);
  const std::uint64_t n = 64;
  const unsigned es = 16;
  const std::int64_t stride = 48;
  const std::uint64_t src = h.store().alloc(n * stride, 64);
  const std::uint64_t dst = h.store().alloc(n * es, 64);
  for (std::uint64_t i = 0; i < n; ++i) {
    for (unsigned w = 0; w < es / 4; ++w) {
      h.store().write_u32(src + i * stride + 4 * w,
                          std::uint32_t(i * 16 + w));
    }
  }

  Descriptor d;
  d.src = Pattern::strided(src, stride);
  d.dst = Pattern::contiguous(dst);
  d.elem_bytes = es;
  d.num_elems = n;
  h.engine().push(d);
  h.run();

  for (std::uint64_t i = 0; i < n; ++i) {
    for (unsigned w = 0; w < es / 4; ++w) {
      ASSERT_EQ(h.store().read_u32(dst + i * es + 4 * w), i * 16 + w)
          << "element " << i << " word " << w;
    }
  }
}

class DmaIndirectBySize : public ::testing::TestWithParam<unsigned> {};

TEST_P(DmaIndirectBySize, GatherUsesIndexArray) {
  const unsigned index_bits = GetParam();
  for (const bool use_pack : {true, false}) {
    DmaHarness h(use_pack);
    const std::uint64_t n = 96;
    const std::uint64_t table = h.store().alloc(256 * 4, 64);
    const std::uint64_t idx = h.store().alloc(n * 4, 64);
    const std::uint64_t dst = h.store().alloc(n * 4, 64);
    fill_words(h.store(), table, 256, 23);
    std::vector<std::uint32_t> indices(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      indices[i] = std::uint32_t((i * 37 + 11) % 200);
    }
    const unsigned ib = index_bits / 8;
    for (std::uint64_t i = 0; i < n; ++i) {
      std::uint8_t raw[4] = {};
      std::memcpy(raw, &indices[i], ib);
      h.store().write(idx + i * ib, raw, ib);
    }

    Descriptor d;
    d.src = Pattern::indirect(table, idx, index_bits);
    d.dst = Pattern::contiguous(dst);
    d.elem_bytes = 4;
    d.num_elems = n;
    h.engine().push(d);
    h.run();

    for (std::uint64_t i = 0; i < n; ++i) {
      ASSERT_EQ(h.store().read_u32(dst + 4 * i),
                h.store().read_u32(table + 4ull * indices[i]))
          << (use_pack ? "pack" : "narrow") << " idx_bits=" << index_bits
          << " element " << i;
    }
    if (!use_pack) {
      // Narrow mode stages the whole index array through the engine.
      EXPECT_EQ(h.engine().stats().index_fetch_bytes, n * ib);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(IndexSizes, DmaIndirectBySize,
                         ::testing::Values(8u, 16u, 32u));

TEST(DmaEngine, IndirectScatter) {
  for (const bool use_pack : {true, false}) {
    DmaHarness h(use_pack);
    const std::uint64_t n = 64;
    const std::uint64_t src = h.store().alloc(n * 4, 64);
    const std::uint64_t idx = h.store().alloc(n * 4, 64);
    const std::uint64_t table = h.store().alloc(512 * 4, 64);
    fill_words(h.store(), src, n, 31);
    // Distinct scatter targets.
    for (std::uint64_t i = 0; i < n; ++i) {
      h.store().write_u32(idx + 4 * i, std::uint32_t(i * 7 % 448));
    }

    Descriptor d;
    d.src = Pattern::contiguous(src);
    d.dst = Pattern::indirect(table, idx, 32);
    d.elem_bytes = 4;
    d.num_elems = n;
    h.engine().push(d);
    h.run();

    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t target = table + 4ull * (i * 7 % 448);
      ASSERT_EQ(h.store().read_u32(target), h.store().read_u32(src + 4 * i))
          << (use_pack ? "pack" : "narrow") << " element " << i;
    }
  }
}

TEST(DmaEngine, ZeroLengthDescriptorCompletes) {
  DmaHarness h(/*use_pack=*/true);
  Descriptor d;
  d.src = Pattern::contiguous(kMemBase);
  d.dst = Pattern::contiguous(kMemBase + 0x1000);
  d.elem_bytes = 4;
  d.num_elems = 0;
  h.engine().push(d);
  h.run(1000);
  EXPECT_EQ(h.engine().stats().descriptors_done, 1u);
  EXPECT_EQ(h.engine().stats().bytes_moved, 0u);
}

TEST(DmaEngine, InMemoryChainExecutesAllLinks) {
  DmaHarness h(/*use_pack=*/true);
  const std::uint64_t n = 64;
  std::vector<Descriptor> descs(3);
  std::vector<std::uint64_t> srcs(3), dsts(3);
  for (std::size_t k = 0; k < 3; ++k) {
    srcs[k] = h.store().alloc(n * 4, 64);
    dsts[k] = h.store().alloc(n * 4, 64);
    fill_words(h.store(), srcs[k], n, std::uint32_t(100 + k));
    descs[k].src = Pattern::contiguous(srcs[k]);
    descs[k].dst = Pattern::contiguous(dsts[k]);
    descs[k].elem_bytes = 4;
    descs[k].num_elems = n;
  }
  const std::uint64_t head = dma::build_chain(h.store(), descs);
  h.engine().start_chain(head);
  h.run();

  EXPECT_EQ(h.engine().stats().descriptors_done, 3u);
  EXPECT_GT(h.engine().stats().desc_fetch_bytes, 0u);
  for (std::size_t k = 0; k < 3; ++k) {
    for (std::uint64_t i = 0; i < n; ++i) {
      ASSERT_EQ(h.store().read_u32(dsts[k] + 4 * i),
                h.store().read_u32(srcs[k] + 4 * i))
          << "link " << k << " word " << i;
    }
  }
}

TEST(DmaEngine, RegisterDescriptorWithNextContinuesInMemory) {
  DmaHarness h(/*use_pack=*/true);
  const std::uint64_t n = 32;
  const std::uint64_t src1 = h.store().alloc(n * 4, 64);
  const std::uint64_t dst1 = h.store().alloc(n * 4, 64);
  const std::uint64_t src2 = h.store().alloc(n * 4, 64);
  const std::uint64_t dst2 = h.store().alloc(n * 4, 64);
  fill_words(h.store(), src1, n, 1);
  fill_words(h.store(), src2, n, 2);

  Descriptor tail;
  tail.src = Pattern::contiguous(src2);
  tail.dst = Pattern::contiguous(dst2);
  tail.elem_bytes = 4;
  tail.num_elems = n;
  const std::uint64_t tail_addr =
      h.store().alloc(dma::kDescriptorBytes, 64);
  dma::write_descriptor(h.store(), tail_addr, tail);

  Descriptor headd;
  headd.src = Pattern::contiguous(src1);
  headd.dst = Pattern::contiguous(dst1);
  headd.elem_bytes = 4;
  headd.num_elems = n;
  headd.next = tail_addr;
  h.engine().push(headd);
  h.run();

  EXPECT_EQ(h.engine().stats().descriptors_done, 2u);
  EXPECT_EQ(h.store().read_u32(dst2 + 4), h.store().read_u32(src2 + 4));
}

// --------------------------------------------------- pack-vs-narrow cycles

struct StrideCase {
  std::int64_t stride;
};

class PackNeverSlower : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(PackNeverSlower, GatherCyclesPackLeqNarrow) {
  const std::int64_t stride = GetParam();
  const std::uint64_t n = 128;
  std::uint64_t cycles_pack = 0;
  std::uint64_t cycles_narrow = 0;
  for (const bool use_pack : {true, false}) {
    DmaHarness h(use_pack);
    const std::uint64_t src = h.store().alloc(n * std::uint64_t(stride) + 64,
                                              64);
    const std::uint64_t dst = h.store().alloc(n * 4, 64);
    for (std::uint64_t i = 0; i < n; ++i) {
      h.store().write_u32(src + i * std::uint64_t(stride),
                          std::uint32_t(i ^ 0x55));
    }
    Descriptor d;
    d.src = Pattern::strided(src, stride);
    d.dst = Pattern::contiguous(dst);
    d.elem_bytes = 4;
    d.num_elems = n;
    h.engine().push(d);
    const std::uint64_t cycles = h.run();
    for (std::uint64_t i = 0; i < n; ++i) {
      ASSERT_EQ(h.store().read_u32(dst + 4 * i), (i ^ 0x55));
    }
    (use_pack ? cycles_pack : cycles_narrow) = cycles;
  }
  EXPECT_LE(cycles_pack, cycles_narrow)
      << "AXI-Pack gather slower than narrow per-element at stride "
      << stride;
}

INSTANTIATE_TEST_SUITE_P(Strides, PackNeverSlower,
                         ::testing::Values(4, 8, 12, 20, 32, 36, 64, 68,
                                           128, 256));

// ----------------------------------------------------------- robustness

TEST(DmaRobustness, MalformedInMemoryDescriptorErrorsTheChain) {
  // A chain whose second link is garbage: the first transfer completes,
  // the fetch of the malformed link is counted as an error completion
  // (never executed, never followed), and the engine drains cleanly.
  DmaHarness h(/*use_pack=*/true);
  const std::uint64_t n = 64;
  const std::uint64_t src = h.store().alloc(n * 4, 64);
  const std::uint64_t dst = h.store().alloc(n * 4, 64);
  fill_words(h.store(), src, n, 7);

  const std::uint64_t bad_addr = h.store().alloc(dma::kDescriptorBytes, 64);
  for (std::uint64_t i = 0; i < dma::kDescriptorBytes; i += 4) {
    h.store().write_u32(bad_addr + i, 0xDEADBEEFu);  // flags word invalid
  }

  Descriptor head;
  head.src = Pattern::contiguous(src);
  head.dst = Pattern::contiguous(dst);
  head.elem_bytes = 4;
  head.num_elems = n;
  head.next = bad_addr;
  h.engine().push(head);
  h.run();

  EXPECT_EQ(h.engine().stats().descriptors_done, 1u);
  EXPECT_EQ(h.engine().stats().malformed_descriptors, 1u);
  EXPECT_EQ(h.engine().stats().error_descriptors, 1u);
  EXPECT_EQ(h.engine().retry_stats().failed_ops, 1u);
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(h.store().read_u32(dst + 4 * i), h.store().read_u32(src + 4 * i))
        << "word " << i;
  }
}

TEST(DmaRobustness, DramReadFaultIsRetriedTransparently) {
  // An uncorrectable DRAM read fault mid-transfer: the engine drains the
  // attempt, backs off and replays — the moved data is bit-identical.
  sys::SystemBuilder b;
  DmaConfig dc;
  dc.use_pack = true;
  dc.retry.max_attempts = 4;
  dc.retry.timeout_cycles = 50'000;
  dc.retry.backoff = 16;
  b.bus_bits(256).mem_region(kMemBase, 16 << 20).queue_depth(4);
  b.memory("dram");
  b.faults(sim::FaultConfig{});
  b.attach_dma(dc);
  auto system = b.build();
  system->fault_plan()->force(sim::FaultSite::dram_read, 9, 2);

  const std::uint64_t n = 96;
  const std::int64_t stride = 36;
  const std::uint64_t src =
      system->store().alloc(n * static_cast<std::uint64_t>(stride) + 64, 64);
  const std::uint64_t dst = system->store().alloc(n * 4, 64);
  for (std::uint64_t i = 0; i < n; ++i) {
    system->store().write_u32(src + i * static_cast<std::uint64_t>(stride),
                              0xABC000u + std::uint32_t(i));
  }
  Descriptor d;
  d.src = Pattern::strided(src, stride);
  d.dst = Pattern::contiguous(dst);
  d.elem_bytes = 4;
  d.num_elems = n;
  system->dma(0).push(d);
  EXPECT_TRUE(system->run_until_drained(1'000'000));

  EXPECT_EQ(system->fault_plan()->stats().dram_uncorrectable, 1u);
  EXPECT_GE(system->dma(0).retry_stats().retries, 1u);
  EXPECT_EQ(system->dma(0).retry_stats().failed_ops, 0u);
  EXPECT_EQ(system->dma(0).stats().descriptors_done, 1u);
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(system->store().read_u32(dst + 4 * i), 0xABC000u + i)
        << "word " << i;
  }
}

TEST(DmaRobustness, DecodeErrorFailsTheDescriptorWithoutRetry) {
  // A source outside the decoded memory window: the crossbar synthesizes
  // DECERR, which is fatal — no retry attempts are burned, the descriptor
  // completes as an error and the engine goes idle instead of crashing.
  sys::SystemBuilder b;
  DmaConfig dc;
  dc.use_pack = false;
  dc.retry.max_attempts = 4;
  dc.retry.timeout_cycles = 50'000;
  b.bus_bits(256).mem_region(kMemBase, 16 << 20).queue_depth(4);
  b.faults(sim::FaultConfig{});
  b.attach_dma(dc);
  b.attach_port("idle");  // second master forces a decoding crossbar
  auto system = b.build();

  const std::uint64_t n = 32;
  const std::uint64_t dst = system->store().alloc(n * 4, 64);
  Descriptor d;
  d.src = Pattern::contiguous(kMemBase - 0x10000);  // below the window
  d.dst = Pattern::contiguous(dst);
  d.elem_bytes = 4;
  d.num_elems = n;
  system->dma(0).push(d);
  EXPECT_TRUE(system->run_until_drained(1'000'000));

  EXPECT_EQ(system->dma(0).stats().error_descriptors, 1u);
  EXPECT_EQ(system->dma(0).retry_stats().failed_ops, 1u);
  EXPECT_EQ(system->dma(0).retry_stats().retries, 0u);
  EXPECT_EQ(system->dma(0).stats().descriptors_done, 0u);
}

}  // namespace
}  // namespace axipack
