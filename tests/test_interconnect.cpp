// Interconnect IP tests: AXI crossbar routing/ordering with multiple
// masters and slaves, and the width converter's regular + pack re-packing.
#include "test_common.hpp"

#include <cstring>
#include <memory>

#include "axi/burst.hpp"
#include "axi/types.hpp"
#include "axi/width_converter.hpp"
#include "axi/xbar.hpp"
#include "mem/backing_store.hpp"
#include "mem/banked_memory.hpp"
#include "pack/adapter.hpp"

namespace axipack {
namespace {

constexpr std::uint64_t kSlave0Base = 0x8000'0000ull;
constexpr std::uint64_t kSlave1Base = 0x9000'0000ull;
constexpr std::uint64_t kRegion = 1u << 20;

/// A functional AXI slave answering reads with (addr/4) and acking writes;
/// used to verify crossbar routing without a full memory stack.
class EchoSlave final : public sim::Component {
 public:
  EchoSlave(sim::Kernel& k, axi::AxiPort& port, unsigned bus_bytes)
      : port_(port), bus_bytes_(bus_bytes) {
    k.add(*this);
  }

  void tick() override {
    if (beats_left_ == 0 && port_.ar.can_pop()) {
      ar_ = port_.ar.pop();
      beats_left_ = ar_.beats();
      beat_ = 0;
    }
    if (beats_left_ > 0 && port_.r.can_push()) {
      axi::AxiR r;
      r.id = ar_.id;
      const std::uint64_t addr = axi::beat_addr(ar_, beat_);
      for (unsigned w = 0; w < bus_bytes_ / 4; ++w) {
        const std::uint32_t value =
            static_cast<std::uint32_t>((addr + 4 * w) / 4);
        axi::place_bytes(r.data, 4 * w,
                         reinterpret_cast<const std::uint8_t*>(&value), 4);
      }
      r.useful_bytes = static_cast<std::uint16_t>(bus_bytes_);
      ++beat_;
      --beats_left_;
      r.last = beats_left_ == 0;
      port_.r.push(r);
    }
    if (port_.aw.can_pop() && w_expected_ == 0) {
      aw_ = port_.aw.pop();
      w_expected_ = aw_.beats();
    }
    if (w_expected_ > 0 && port_.w.can_pop()) {
      port_.w.pop();
      if (--w_expected_ == 0 && port_.b.can_push()) {
        axi::AxiB b;
        b.id = aw_.id;
        port_.b.push(b);
      }
    }
  }

 private:
  axi::AxiPort& port_;
  unsigned bus_bytes_;
  axi::AxiAr ar_{};
  axi::AxiAw aw_{};
  unsigned beats_left_ = 0;
  unsigned beat_ = 0;
  unsigned w_expected_ = 0;
};

TEST(AxiXbarTest, RoutesByAddress) {
  sim::Kernel k;
  axi::AxiPort m0(k, 2, "m0");
  axi::AxiPort s0(k, 2, "s0");
  axi::AxiPort s1(k, 2, "s1");
  axi::AxiXbar xbar(k, {&m0}, {&s0, &s1},
                    {{kSlave0Base, kRegion, 0}, {kSlave1Base, kRegion, 1}});
  EchoSlave e0(k, s0, 32);
  EchoSlave e1(k, s1, 32);

  // One read to each slave, same master.
  axi::AxiAr ar;
  ar.addr = kSlave1Base + 64;
  ar.size = 5;
  ar.len = 0;
  m0.ar.push(ar);
  int beats = 0;
  std::uint32_t first_word = 0;
  k.run_until([&] {
    if (m0.r.can_pop()) {
      const auto beat = m0.r.pop();
      if (beats == 0) {
        axi::extract_bytes(beat.data, 0,
                           reinterpret_cast<std::uint8_t*>(&first_word), 4);
      }
      ++beats;
      return beat.last;
    }
    return false;
  });
  EXPECT_EQ(beats, 1);
  EXPECT_EQ(first_word, static_cast<std::uint32_t>((kSlave1Base + 64) / 4));
}

TEST(AxiXbarTest, TwoMastersArbitrateFairly) {
  sim::Kernel k;
  axi::AxiPort m0(k, 4, "m0");
  axi::AxiPort m1(k, 4, "m1");
  axi::AxiPort s0(k, 4, "s0");
  axi::AxiXbar xbar(k, {&m0, &m1}, {&s0}, {{kSlave0Base, kRegion, 0}});
  EchoSlave e0(k, s0, 32);

  // Both masters issue 4 single-beat reads each.
  int pushed0 = 0;
  int pushed1 = 0;
  int got0 = 0;
  int got1 = 0;
  k.run_until(
      [&] {
        if (pushed0 < 4 && m0.ar.can_push()) {
          axi::AxiAr ar;
          ar.addr = kSlave0Base + 32ull * pushed0;
          ar.size = 5;
          m0.ar.push(ar);
          ++pushed0;
        }
        if (pushed1 < 4 && m1.ar.can_push()) {
          axi::AxiAr ar;
          ar.addr = kSlave0Base + 4096 + 32ull * pushed1;
          ar.size = 5;
          m1.ar.push(ar);
          ++pushed1;
        }
        if (m0.r.can_pop()) {
          m0.r.pop();
          ++got0;
        }
        if (m1.r.can_pop()) {
          m1.r.pop();
          ++got1;
        }
        return got0 == 4 && got1 == 4;
      },
      10'000);
  EXPECT_EQ(got0, 4);
  EXPECT_EQ(got1, 4);
}

TEST(AxiXbarTest, WriteFollowsAwOrder) {
  sim::Kernel k;
  axi::AxiPort m0(k, 4, "m0");
  axi::AxiPort s0(k, 4, "s0");
  axi::AxiXbar xbar(k, {&m0}, {&s0}, {{kSlave0Base, kRegion, 0}});
  EchoSlave e0(k, s0, 32);

  axi::AxiAw aw;
  aw.addr = kSlave0Base;
  aw.size = 5;
  aw.len = 1;  // two beats
  m0.aw.push(aw);
  int w_pushed = 0;
  bool got_b = false;
  k.run_until(
      [&] {
        if (w_pushed < 2 && m0.w.can_push()) {
          axi::AxiW w;
          w.useful_bytes = 32;
          w.strb = 0xFFFFFFFF;
          w.last = w_pushed == 1;
          m0.w.push(w);
          ++w_pushed;
        }
        if (m0.b.can_pop()) {
          m0.b.pop();
          got_b = true;
        }
        return got_b;
      },
      10'000);
  EXPECT_TRUE(got_b);
}

TEST(AxiXbarTest, PackBurstsPassThroughUntouched) {
  // The key compatibility claim: a non-reshaping interconnect routes
  // AXI-Pack bursts without modification. Wire a crossbar in front of a
  // real adapter + memory and run a strided gather through it.
  sim::Kernel k;
  mem::BackingStore store(kSlave0Base, 1u << 20);
  for (std::uint32_t i = 0; i < 4096; ++i) {
    store.write_u32(kSlave0Base + 4ull * i, i + 1);
  }
  axi::AxiPort m0(k, 2, "m0");
  axi::AxiPort s0(k, 2, "s0");
  axi::AxiXbar xbar(k, {&m0}, {&s0}, {{kSlave0Base, kRegion, 0}});
  mem::BankedMemoryConfig mc;
  mem::BankedMemory memory(k, store, mc);
  pack::AdapterConfig ac;
  pack::AxiPackAdapter adapter(k, s0, memory, ac);

  const auto bursts =
      axi::split_pack_strided(kSlave0Base, 7 * 4, 4, 24, 32);
  m0.ar.push(bursts[0]);
  std::vector<std::uint32_t> got;
  k.run_until(
      [&] {
        while (m0.r.can_pop()) {
          const auto beat = m0.r.pop();
          for (unsigned e = 0; e < beat.useful_bytes / 4; ++e) {
            std::uint32_t v;
            axi::extract_bytes(beat.data, 4 * e,
                               reinterpret_cast<std::uint8_t*>(&v), 4);
            got.push_back(v);
          }
          if (beat.last) return true;
        }
        return false;
      },
      100'000);
  ASSERT_EQ(got.size(), 24u);
  for (std::uint32_t i = 0; i < 24; ++i) EXPECT_EQ(got[i], 7 * i + 1);
}

TEST(WidthConverterTest, RegularReadDownsized) {
  sim::Kernel k;
  axi::AxiPort up(k, 2, "up");      // 32B master side
  axi::AxiPort down(k, 2, "down");  // 8B slave side
  axi::AxiWidthConverter conv(k, up, 32, down, 8);
  EchoSlave slave(k, down, 8);

  const auto bursts = axi::split_contiguous(kSlave0Base, 64, 32);
  up.ar.push(bursts[0]);
  std::vector<std::uint32_t> got;
  k.run_until(
      [&] {
        while (up.r.can_pop()) {
          const auto beat = up.r.pop();
          for (unsigned e = 0; e < beat.useful_bytes / 4; ++e) {
            std::uint32_t v;
            axi::extract_bytes(beat.data, 4 * e,
                               reinterpret_cast<std::uint8_t*>(&v), 4);
            got.push_back(v);
          }
          if (beat.last) return true;
        }
        return false;
      },
      10'000);
  ASSERT_EQ(got.size(), 16u);
  for (std::uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(got[i], static_cast<std::uint32_t>(kSlave0Base / 4 + i));
  }
}

TEST(WidthConverterTest, PackBurstRepacked) {
  // A pack burst crossing the converter is re-derived for the narrow bus:
  // wire converter -> adapter(8B) -> memory and gather through it.
  sim::Kernel k;
  mem::BackingStore store(kSlave0Base, 1u << 20);
  for (std::uint32_t i = 0; i < 4096; ++i) {
    store.write_u32(kSlave0Base + 4ull * i, 0xF00 + i);
  }
  axi::AxiPort up(k, 2, "up");
  axi::AxiPort down(k, 2, "down");
  axi::AxiWidthConverter conv(k, up, 32, down, 8);
  mem::BankedMemoryConfig mc;
  mc.num_ports = 2;  // 8B bus -> 2 word ports
  mem::BankedMemory memory(k, store, mc);
  pack::AdapterConfig ac;
  ac.bus_bytes = 8;
  pack::AxiPackAdapter adapter(k, down, memory, ac);

  // 20 elements stride 3: wide master sees 3 beats (8 elems each), narrow
  // side re-packs into 10 beats of 2 elements.
  const auto bursts = axi::split_pack_strided(kSlave0Base, 3 * 4, 4, 20, 32);
  up.ar.push(bursts[0]);
  std::vector<std::uint32_t> got;
  k.run_until(
      [&] {
        while (up.r.can_pop()) {
          const auto beat = up.r.pop();
          for (unsigned e = 0; e < beat.useful_bytes / 4; ++e) {
            std::uint32_t v;
            axi::extract_bytes(beat.data, 4 * e,
                               reinterpret_cast<std::uint8_t*>(&v), 4);
            got.push_back(v);
          }
          if (beat.last) return true;
        }
        return false;
      },
      100'000);
  ASSERT_EQ(got.size(), 20u);
  for (std::uint32_t i = 0; i < 20; ++i) EXPECT_EQ(got[i], 0xF00u + 3 * i);
}

/// Wide-master fabric behind a downsizer: converter -> adapter -> memory.
struct DownsizedFabric {
  sim::Kernel k;
  mem::BackingStore store{kSlave0Base, 1u << 20};
  axi::AxiPort up;
  axi::AxiPort down;
  axi::AxiWidthConverter conv;
  mem::BankedMemoryConfig mc;
  std::unique_ptr<mem::BankedMemory> memory;
  std::unique_ptr<pack::AxiPackAdapter> adapter;

  DownsizedFabric(unsigned up_bytes, unsigned down_bytes)
      : up(k, 2, "up"),
        down(k, 2, "down"),
        conv(k, up, up_bytes, down, down_bytes) {
    mc.num_ports = down_bytes / 4;
    memory = std::make_unique<mem::BankedMemory>(k, store, mc);
    pack::AdapterConfig ac;
    ac.bus_bytes = down_bytes;
    adapter = std::make_unique<pack::AxiPackAdapter>(k, down, *memory, ac);
  }

  /// Collects packed payload words of one read burst on the wide side.
  std::vector<std::uint32_t> gather(const axi::AxiAr& ar) {
    up.ar.push(ar);
    std::vector<std::uint32_t> got;
    k.run_until(
        [&] {
          while (up.r.can_pop()) {
            const auto beat = up.r.pop();
            for (unsigned e = 0; e < beat.useful_bytes / 4; ++e) {
              std::uint32_t v;
              axi::extract_bytes(beat.data, 4 * e,
                                 reinterpret_cast<std::uint8_t*>(&v), 4);
              got.push_back(v);
            }
            if (beat.last) return true;
          }
          return false;
        },
        200'000);
    return got;
  }
};

class WidthConverterSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned, bool>> {};

TEST_P(WidthConverterSweep, PackGatherSurvivesDownsizing) {
  const auto [down_bytes, elem_bytes, indirect] = GetParam();
  DownsizedFabric fab(32, down_bytes);
  const std::uint32_t n = 48;
  const unsigned wpe = elem_bytes / 4;
  // Element table.
  for (std::uint32_t i = 0; i < 4096; ++i) {
    fab.store.write_u32(kSlave0Base + 4ull * i, 0xD000 + i);
  }

  axi::AxiAr ar;
  std::vector<std::uint32_t> expect;
  if (indirect) {
    const std::uint64_t idx_base = kSlave0Base + (1u << 18);
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t idx = (i * 31 + 5) % 512;
      fab.store.write_u32(idx_base + 4ull * i, idx);
      for (unsigned w = 0; w < wpe; ++w) {
        expect.push_back(0xD000 + idx * wpe + w);
      }
    }
    const auto bursts = axi::split_pack_indirect(kSlave0Base, idx_base, 32,
                                                 elem_bytes, n, 32);
    ASSERT_EQ(bursts.size(), 1u);
    ar = bursts[0];
  } else {
    const std::int64_t stride = 5 * elem_bytes;
    for (std::uint32_t i = 0; i < n; ++i) {
      for (unsigned w = 0; w < wpe; ++w) {
        expect.push_back(0xD000 + i * 5 * wpe + w);
      }
    }
    const auto bursts =
        axi::split_pack_strided(kSlave0Base, stride, elem_bytes, n, 32);
    ASSERT_EQ(bursts.size(), 1u);
    ar = bursts[0];
  }

  const auto got = fab.gather(ar);
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    ASSERT_EQ(got[i], expect[i]) << "word " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RatiosAndElems, WidthConverterSweep,
    ::testing::Combine(::testing::Values(8u, 16u),  // narrow side width
                       ::testing::Values(4u, 8u),   // element bytes
                       ::testing::Bool()),          // strided / indirect
    [](const auto& info) {
      return "down" + std::to_string(std::get<0>(info.param)) + "_es" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_indirect" : "_strided");
    });

TEST(WidthConverterTest, PackScatterSurvivesDownsizing) {
  // Strided pack WRITE through the downsizer: wide W beats are split into
  // narrow beats whose packed payload the narrow-side adapter scatters.
  DownsizedFabric fab(32, 8);
  const std::uint32_t n = 24;
  const std::int64_t stride = 28;
  const std::uint64_t dst = kSlave0Base + (1u << 16);

  const auto bursts = axi::split_pack_strided(dst, stride, 4, n, 32);
  ASSERT_EQ(bursts.size(), 1u);
  const axi::AxiAw aw = bursts[0];
  bool aw_pushed = false;
  std::uint32_t sent = 0;
  bool done = false;
  fab.k.run_until(
      [&] {
        if (!aw_pushed && fab.up.aw.can_push()) {
          fab.up.aw.push(aw);
          aw_pushed = true;
        }
        if (aw_pushed && sent < n && fab.up.w.can_push()) {
          axi::AxiW beat;
          const std::uint32_t cnt = std::min<std::uint32_t>(8, n - sent);
          for (std::uint32_t e = 0; e < cnt; ++e) {
            const std::uint32_t value = 0xBEE0'0000u + sent + e;
            axi::place_bytes(beat.data, 4 * e,
                             reinterpret_cast<const std::uint8_t*>(&value),
                             4);
          }
          beat.strb = axi::strb_mask(0, 4 * cnt);
          beat.useful_bytes = static_cast<std::uint16_t>(4 * cnt);
          sent += cnt;
          beat.last = sent == n;
          fab.up.w.push(beat);
        }
        if (fab.up.b.can_pop()) {
          fab.up.b.pop();
          done = true;
        }
        return done;
      },
      200'000);
  ASSERT_TRUE(done);
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(fab.store.read_u32(dst + i * stride), 0xBEE0'0000u + i)
        << "element " << i;
  }
}

}  // namespace
}  // namespace axipack
