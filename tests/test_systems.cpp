// End-to-end integration: every workload runs on every system, results are
// verified against golden references, and the paper's qualitative ordering
// holds (PACK faster than BASE, close to IDEAL).
#include "test_common.hpp"

#include <tuple>

#include "systems/runner.hpp"
#include "systems/sweep.hpp"

namespace axipack {
namespace {

using sys::RunResult;
using sys::run_default;
using sys::SystemKind;
using wl::KernelKind;

/// Small problem sizes keep the full cross-product fast while still
/// exercising every code path.
wl::WorkloadConfig small_config(KernelKind kernel, SystemKind system) {
  wl::WorkloadConfig cfg = sys::plan_workload(kernel, sys::scenario_name(system));
  cfg.n = wl::kernel_is_indirect(kernel) ? 48 : 32;
  cfg.nnz_per_row = 24;
  return cfg;
}

class AllWorkloadsAllSystems
    : public ::testing::TestWithParam<std::tuple<KernelKind, SystemKind>> {};

TEST_P(AllWorkloadsAllSystems, ProducesCorrectResults) {
  const auto [kernel, system] = GetParam();
  const auto result =
      sys::run_workload(sys::scenario_name(system), small_config(kernel, system));
  EXPECT_TRUE(result.correct) << result.error;
  EXPECT_GT(result.cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AllWorkloadsAllSystems,
    ::testing::Combine(::testing::Values(KernelKind::ismt, KernelKind::gemv,
                                         KernelKind::trmv, KernelKind::spmv,
                                         KernelKind::prank, KernelKind::sssp),
                       ::testing::Values(SystemKind::base, SystemKind::pack,
                                         SystemKind::ideal)),
    [](const auto& info) {
      return std::string(wl::kernel_name(std::get<0>(info.param))) + "_" +
             sys::system_name(std::get<1>(info.param));
    });

class DataflowsWork
    : public ::testing::TestWithParam<std::tuple<KernelKind, wl::Dataflow,
                                                 SystemKind>> {};

TEST_P(DataflowsWork, BothDataflowsCorrect) {
  const auto [kernel, dataflow, system] = GetParam();
  auto cfg = small_config(kernel, system);
  cfg.dataflow = dataflow;
  const auto result =
      sys::run_workload(sys::scenario_name(system), cfg);
  EXPECT_TRUE(result.correct) << result.error;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, DataflowsWork,
    ::testing::Combine(::testing::Values(KernelKind::gemv, KernelKind::trmv),
                       ::testing::Values(wl::Dataflow::rowwise,
                                         wl::Dataflow::colwise),
                       ::testing::Values(SystemKind::base, SystemKind::pack,
                                         SystemKind::ideal)));

TEST(BusWidths, AllWidthsCorrect) {
  for (const unsigned bus : {64u, 128u, 256u}) {
    for (const auto kind : {SystemKind::base, SystemKind::pack}) {
      auto cfg = small_config(KernelKind::ismt, kind);
      const auto result =
          sys::run_workload(sys::scenario_name(kind, bus), cfg);
      EXPECT_TRUE(result.correct)
          << "bus " << bus << " " << sys::system_name(kind) << ": "
          << result.error;
    }
  }
}

TEST(BankCounts, AllCountsCorrect) {
  for (const unsigned banks : {8u, 11u, 16u, 17u, 31u, 32u}) {
    auto cfg = small_config(KernelKind::spmv, SystemKind::pack);
    const auto result = sys::run_workload(
        sys::scenario_name(SystemKind::pack, 256, banks), cfg);
    EXPECT_TRUE(result.correct) << "banks " << banks << ": " << result.error;
  }
}

TEST(Ordering, PackBeatsBaseOnStrided) {
  const auto base = run_default(KernelKind::ismt, SystemKind::base);
  const auto pack = run_default(KernelKind::ismt, SystemKind::pack);
  ASSERT_TRUE(base.correct) << base.error;
  ASSERT_TRUE(pack.correct) << pack.error;
  EXPECT_GT(static_cast<double>(base.cycles) / pack.cycles, 2.0);
}

TEST(Ordering, PackNearIdealOnGemv) {
  const auto pack = run_default(KernelKind::gemv, SystemKind::pack);
  const auto ideal = run_default(KernelKind::gemv, SystemKind::ideal);
  ASSERT_TRUE(pack.correct && ideal.correct);
  // PACK achieves ~97% of IDEAL on average in the paper; allow slack.
  EXPECT_LT(static_cast<double>(pack.cycles) / ideal.cycles, 1.35);
}

TEST(Ordering, IndexTrafficOnlyOnBaseAndIdeal) {
  auto cfg = small_config(KernelKind::spmv, SystemKind::base);
  const auto base =
      sys::run_workload(sys::scenario_name(SystemKind::base), cfg);
  EXPECT_GT(base.bus.r_index_bytes, 0u);

  cfg = small_config(KernelKind::spmv, SystemKind::pack);
  const auto pack =
      sys::run_workload(sys::scenario_name(SystemKind::pack), cfg);
  EXPECT_EQ(pack.bus.r_index_bytes, 0u);
}

TEST(Determinism, RepeatRunsIdentical) {
  const auto a = run_default(KernelKind::spmv, SystemKind::pack);
  const auto b = run_default(KernelKind::spmv, SystemKind::pack);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.bus.r_payload_bytes, b.bus.r_payload_bytes);
}

TEST(Utilization, BoundedByOne) {
  for (const auto kind :
       {SystemKind::base, SystemKind::pack, SystemKind::ideal}) {
    const auto r = run_default(KernelKind::gemv, kind);
    EXPECT_GE(r.r_util, 0.0);
    EXPECT_LE(r.r_util, 1.0);
    EXPECT_LE(r.r_util_no_idx, r.r_util + 1e-12);
  }
}

TEST(SweepThreads, ParsesValidCounts) {
  EXPECT_EQ(sys::SweepRunner::parse_threads("1").value_or(0), 1u);
  EXPECT_EQ(sys::SweepRunner::parse_threads("4").value_or(0), 4u);
  EXPECT_EQ(sys::SweepRunner::parse_threads("128").value_or(0), 128u);
  EXPECT_EQ(sys::SweepRunner::parse_threads(" 8 ").value_or(0), 8u);
  EXPECT_EQ(sys::SweepRunner::parse_threads("007").value_or(0), 7u);
}

TEST(SweepThreads, RejectsInvalidCounts) {
  // Historical bug: strtol-based parsing silently fell through to
  // hardware_concurrency() on all of these instead of rejecting them.
  EXPECT_FALSE(sys::SweepRunner::parse_threads(nullptr).has_value());
  EXPECT_FALSE(sys::SweepRunner::parse_threads("").has_value());
  EXPECT_FALSE(sys::SweepRunner::parse_threads("0").has_value());
  EXPECT_FALSE(sys::SweepRunner::parse_threads("-2").has_value());
  EXPECT_FALSE(sys::SweepRunner::parse_threads("four").has_value());
  EXPECT_FALSE(sys::SweepRunner::parse_threads("4x").has_value());
  EXPECT_FALSE(sys::SweepRunner::parse_threads("4 8").has_value());
  EXPECT_FALSE(sys::SweepRunner::parse_threads("0x4").has_value());
  EXPECT_FALSE(sys::SweepRunner::parse_threads("99999999999").has_value());
}

TEST(SweepThreads, ExplicitCountOverridesEnvironment) {
  const sys::SweepRunner runner(3);
  EXPECT_EQ(runner.threads(), 3u);
}

}  // namespace
}  // namespace axipack
