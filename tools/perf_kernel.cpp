// Wall-clock perf harness for the simulation kernel (BENCH_kernel.json).
//
// Runs the headline_summary scenario set (the paper's six kernels on the
// BASE / PACK / IDEAL 256-bit SoCs) through three kernel configurations:
//
//   naive serial    — gating disabled: every component ticks every cycle,
//                     the pre-PR kernel's execution model (baseline);
//   gated serial    — the activity-gated kernel, one thread;
//   gated parallel  — the same set fanned out over SweepRunner.
//
// All three produce identical per-run cycle counts (verified here), so the
// wall-clock ratios isolate the engine, not the model. Results, including
// simulated-cycles/second per scenario, are written as JSON for the CI
// artifact and the perf trajectory. All workload RNG is seeded from the
// fixed constant below (recorded in the JSON) so runs are reproducible.
//
// Usage: perf_kernel [--out=PATH] [--repeats=N]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "systems/channel_sweep.hpp"
#include "systems/runner.hpp"
#include "systems/scenario.hpp"
#include "systems/sweep.hpp"
#include "systems/system.hpp"
#include "util/json.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace axipack;
using Clock = std::chrono::steady_clock;

/// All workload RNG derives from this constant (satellite: deterministic
/// perf harness). It is also recorded in the JSON output.
constexpr std::uint64_t kPerfSeed = 42;

// Development-time reference: the actual pre-PR engine (commit 14bc904,
// deque channels, commit-every-fifo, tick-every-component, eagerly zeroed
// stores) running this exact scenario set on the PR development machine,
// interleaved with the new kernel for fairness. The runtime "naive" mode
// below only isolates the gating delta — the ring-buffer / commit-free /
// lazy-allocation rewrite benefits both modes — so the cross-commit
// reference is what "vs the pre-PR kernel" means. Reproduce with the
// command in README ("Kernel performance").
constexpr const char* kPrePrCommit = "14bc904";
constexpr double kPrePrWallMsReference = 3650.0;
constexpr double kNewWallMsAtReference = 1280.0;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

struct SetResult {
  double wall_ms = 0.0;
  std::uint64_t cycles = 0;
  bool correct = true;
  std::vector<sys::RunResult> runs;
};

/// The six paper kernels, in job order — headline_jobs, dram_jobs, and the
/// JSON emitters all index into this one list so the labels cannot drift.
constexpr wl::KernelKind kKernels[] = {wl::KernelKind::ismt,
                                       wl::KernelKind::gemv,
                                       wl::KernelKind::trmv,
                                       wl::KernelKind::spmv,
                                       wl::KernelKind::prank,
                                       wl::KernelKind::sssp};

std::vector<sys::WorkloadJob> headline_jobs(bool naive) {
  std::vector<sys::WorkloadJob> jobs;
  for (const auto kernel : kKernels) {
    for (const auto kind : {sys::SystemKind::base, sys::SystemKind::pack,
                            sys::SystemKind::ideal}) {
      sys::WorkloadJob job;
      job.scenario = sys::scenario_name(kind);
      job.cfg = sys::plan_workload(kernel, job.scenario);
      job.cfg.seed = kPerfSeed;
      job.naive_kernel = naive;
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

/// The same six kernels over the cycle-level DRAM backend (base-dram /
/// pack-dram): a deeper-pipeline, refresh-bearing scenario set that
/// stresses the kernel's wake scheduling differently than the SRAM SoCs.
/// plan_workload sees the "dram" backend here, so PACK gemv/trmv run
/// row-wise (the backend-aware methodology choice).
std::vector<sys::WorkloadJob> dram_jobs(bool naive) {
  std::vector<sys::WorkloadJob> jobs;
  for (const auto kernel : kKernels) {
    for (const auto kind : {sys::SystemKind::base, sys::SystemKind::pack}) {
      sys::WorkloadJob job;
      job.scenario = std::string(sys::system_name(kind)) + "-dram";
      job.cfg = sys::plan_workload(kernel, job.scenario);
      job.cfg.seed = kPerfSeed;
      job.naive_kernel = naive;
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

/// The strided kernels on the row-batching pack-dram scheduler (the
/// default). Their row-hit ratios are the regression canary for the
/// batching scheduler: the column-wise dataflow is pinned (as in fig7),
/// because the backend-aware planner would otherwise pick row-wise
/// gemv/trmv whose free open-row hits mask a broken scheduler.
constexpr wl::KernelKind kStridedKernels[] = {wl::KernelKind::ismt,
                                              wl::KernelKind::gemv,
                                              wl::KernelKind::trmv};
/// Recorded floor for the pack-dram strided row-hit ratio at seed 42 with
/// the column-wise pin: ismt 0.71, gemv 0.50, trmv 0.66 (head-only
/// scheduling bottomed out at 0.29 on trmv); the floor sits under the
/// weakest point with a margin for workload-generator drift.
constexpr double kPackDramStridedHitFloor = 0.45;
/// Recorded floors for the *planned* (backend-aware, row-wise) pack-dram
/// gemv/trmv at seed 42 — the PR-5 residual fix. The PR-4 residual ran
/// them at 0.27x/0.61x vs base-dram with ~51%/66% hits; the row-wise plan
/// restores BASE parity (measured 1.00x at 99.7%/99.4% open-row hits).
constexpr double kPackDramGemvTrmvSpeedupFloor = 0.95;
constexpr double kPackDramPlannedHitFloor = 0.95;

/// The indirect kernels on the coalesced pack-dram path ("pack-dram-coalesce":
/// row-aware batching plus the index coalescing unit at default entries /
/// window). Their row-hit ratio is the regression canary for the coalescer:
/// with the element stream folded into the pending table, the DRAM scheduler
/// mostly sees the sequential index stream, and the open-row hit rate must
/// sit at or above the base-dram level (~0.95 at seed 42). The floor leaves
/// margin for workload-generator drift.
constexpr wl::KernelKind kIndirectKernels[] = {wl::KernelKind::spmv,
                                               wl::KernelKind::prank,
                                               wl::KernelKind::sssp};
constexpr double kCoalescedHitFloor = 0.90;

/// Serial-DRAM throughput floor (simulated cycles per wall-clock second,
/// dram set, gated serial). The event-driven scheduler measures
/// ~0.9–1.1M cycles/s on the 1-core dev box (the pre-rewrite full-rescan
/// scheduler sat at ~0.58M); the floor sits below the noise band of the
/// measured post-rewrite value but above the old scheduler, so a
/// regression to per-cycle rescanning fails CI while box-speed jitter
/// does not.
constexpr double kDramCyclesPerSecFloor = 700'000.0;

/// The same six kernels over four interleaved DRAM channels (parametric
/// "{kind}-256-dram-ch4"): the per-master ChannelRouter, per-channel
/// adapters/backends and B-merge all sit on the hot path, so this set is
/// both a wall-clock datapoint and a naive-vs-gated cycle-identity check
/// for the multi-channel fabric.
std::vector<sys::WorkloadJob> dram_mc_jobs(bool naive) {
  std::vector<sys::WorkloadJob> jobs;
  for (const auto kernel : kKernels) {
    for (const auto kind : {sys::SystemKind::base, sys::SystemKind::pack}) {
      sys::WorkloadJob job;
      job.scenario = std::string(sys::system_name(kind)) + "-256-dram-ch4";
      job.cfg = sys::plan_workload(kernel, job.scenario);
      job.cfg.seed = kPerfSeed;
      job.naive_kernel = naive;
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

/// Aggregate R-util scaling floor at 2 channels for the streaming
/// requestor harness (8 masters, permuted mapping). Ideal doubling is
/// 2.0x; the floor leaves headroom for arbitration and DRAM effects while
/// failing any regression that re-serializes the channels.
constexpr double kChannelScalingFloor = 1.7;

std::vector<sys::WorkloadJob> dram_coalesced_jobs() {
  std::vector<sys::WorkloadJob> jobs;
  for (const auto kernel : kIndirectKernels) {
    sys::WorkloadJob job;
    job.scenario = "pack-dram-coalesce";
    job.cfg = sys::plan_workload(kernel, job.scenario);
    job.cfg.seed = kPerfSeed;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<sys::WorkloadJob> dram_batched_jobs() {
  std::vector<sys::WorkloadJob> jobs;
  for (const auto kernel : kStridedKernels) {
    sys::WorkloadJob job;
    job.scenario = "pack-dram";
    job.cfg = sys::plan_workload(kernel, job.scenario);
    // Pin the column walk the scheduler has to absorb (gemv/trmv; ismt
    // ignores the dataflow field).
    job.cfg.dataflow = wl::Dataflow::colwise;
    job.cfg.seed = kPerfSeed;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

/// Open-loop latency-under-load gate (the PR-10 subsystem): a geometric
/// rate sweep of the three open-loop systems, each point a 120k-cycle
/// measured window of Poisson-arriving indirect gathers through the
/// scatter-gather ring DMA. A curve's knee is the highest swept rate whose
/// p99 sojourn latency met the SLO; the coalesced PACK system must sustain
/// >= 1.5x the narrow baseline's knee (measured at seed 42: base 80,
/// pack 160, coalesce 160 req/100k cycles -> 2.0x).
constexpr unsigned kOpenLoopRates[] = {10, 20, 40, 80, 160, 320, 640};
constexpr double kOpenLoopSloP99 = 5000.0;
constexpr double kOpenLoopKneeFloor = 1.5;
constexpr unsigned kOpenLoopRefRate = 80;  ///< reference-rate p99 datapoint

struct OpenLoopCurve {
  std::vector<double> p99;       // per swept rate
  std::vector<double> achieved;  // per swept rate
  double knee = 0.0;             // highest rate with p99 <= SLO
  double p99_at_ref = 0.0;
  bool correct = true;
};

OpenLoopCurve run_open_loop_curve(const std::string& stem) {
  OpenLoopCurve curve;
  for (const unsigned rate : kOpenLoopRates) {
    auto system = sys::ScenarioRegistry::instance()
                      .builder(stem + "-p" + std::to_string(rate))
                      .build();
    const sys::RunResult r = system->run_open_loop(120'000, 20'000'000);
    curve.correct = curve.correct && r.correct;
    const double p99 = r.latency.percentile(99);
    curve.p99.push_back(p99);
    curve.achieved.push_back(r.achieved_rate);
    if (p99 <= kOpenLoopSloP99 && rate > curve.knee) curve.knee = rate;
    if (rate == kOpenLoopRefRate) curve.p99_at_ref = p99;
  }
  return curve;
}

/// Runs a job set `repeats` times and keeps the fastest wall-clock pass.
SetResult run_jobs(const std::function<std::vector<sys::WorkloadJob>(bool)>&
                       make_jobs,
                   bool naive, unsigned threads, unsigned repeats) {
  SetResult best;
  for (unsigned rep = 0; rep < repeats; ++rep) {
    const auto jobs = make_jobs(naive);
    const auto t0 = Clock::now();
    auto results = sys::run_workloads(jobs, threads);
    const double wall = ms_since(t0);
    std::uint64_t cycles = 0;
    bool correct = true;
    for (const auto& r : results) {
      cycles += r.cycles;
      correct = correct && r.correct;
    }
    if (rep == 0 || wall < best.wall_ms) {
      best.wall_ms = wall;
      best.cycles = cycles;
      best.correct = correct;
      best.runs = std::move(results);
    }
  }
  return best;
}

SetResult run_set(bool naive, unsigned threads, unsigned repeats) {
  return run_jobs(headline_jobs, naive, threads, repeats);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_kernel.json";
  unsigned repeats = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--repeats=", 10) == 0) {
      repeats = static_cast<unsigned>(
          std::max(1l, std::strtol(argv[i] + 10, nullptr, 10)));
    } else {
      std::fprintf(stderr, "usage: %s [--out=PATH] [--repeats=N]\n", argv[0]);
      return 2;
    }
  }

  const unsigned hw = sys::SweepRunner::default_threads();
  std::printf("perf_kernel: headline scenario set, seed=%llu, repeats=%u, "
              "%u worker thread(s) available\n",
              static_cast<unsigned long long>(kPerfSeed), repeats, hw);

  // 1) Baseline: pre-PR kernel semantics (no gating), serial.
  const SetResult naive = run_set(/*naive=*/true, /*threads=*/1, repeats);
  std::printf("  naive serial   : %8.1f ms  (%llu sim cycles)\n",
              naive.wall_ms, static_cast<unsigned long long>(naive.cycles));

  // 2) Gated kernel, serial.
  const SetResult gated = run_set(/*naive=*/false, /*threads=*/1, repeats);
  std::printf("  gated serial   : %8.1f ms\n", gated.wall_ms);

  // 3) The DRAM-endpoint set (base-dram / pack-dram), naive vs gated.
  const SetResult dram_naive =
      run_jobs(dram_jobs, /*naive=*/true, /*threads=*/1, repeats);
  const SetResult dram_gated =
      run_jobs(dram_jobs, /*naive=*/false, /*threads=*/1, repeats);
  std::printf("  dram naive     : %8.1f ms  (%llu sim cycles)\n",
              dram_naive.wall_ms,
              static_cast<unsigned long long>(dram_naive.cycles));
  std::printf("  dram gated     : %8.1f ms\n", dram_gated.wall_ms);

  // 4) Thread scaling at fixed 2/4/8 threads for BOTH scenario sets, so
  // the recorded series is comparable across machines. SweepRunner simply
  // oversubscribes when the host has fewer cores; those points are still
  // recorded (the flattening is a datapoint) but flagged
  // `oversubscribed` and excluded from gated_parallel_ms and every CI
  // floor — an oversubscribed wall-clock measures the host, not the
  // engine. The host width is run too when it extends the series.
  struct ScalePoint {
    unsigned requested;    // worker threads asked of SweepRunner
    unsigned effective;    // min(requested, hardware) — real parallelism
    bool oversubscribed;   // requested > hardware: timing not meaningful
    double wall_ms;
    double dram_wall_ms;
  };
  const auto scale_point = [hw](unsigned t, double wall, double dram_wall) {
    return ScalePoint{t, t < hw ? t : hw, t > hw, wall, dram_wall};
  };
  std::vector<ScalePoint> scaling;
  scaling.push_back(scale_point(1, gated.wall_ms, dram_gated.wall_ms));
  double parallel_ms = gated.wall_ms;
  std::vector<unsigned> widths = {2, 4, 8};
  if (hw > 8) widths.push_back(hw);
  for (const unsigned t : widths) {
    const SetResult r = run_set(/*naive=*/false, t, repeats);
    const SetResult rd = run_jobs(dram_jobs, /*naive=*/false, t, repeats);
    const ScalePoint point = scale_point(t, r.wall_ms, rd.wall_ms);
    scaling.push_back(point);
    if (!point.oversubscribed) parallel_ms = std::min(parallel_ms, r.wall_ms);
    std::printf("  gated %2u threads: %8.1f ms  (dram %8.1f ms)%s\n", t,
                r.wall_ms, rd.wall_ms,
                point.oversubscribed ? "  [oversubscribed]" : "");
  }

  // 4b) The multi-channel DRAM set (4 interleaved channels), naive vs
  // gated: wall-clock datapoint plus cycle-identity through the channel
  // routers, per-channel adapters and the B-merge.
  const SetResult mc_naive =
      run_jobs(dram_mc_jobs, /*naive=*/true, /*threads=*/1, repeats);
  const SetResult mc_gated =
      run_jobs(dram_mc_jobs, /*naive=*/false, /*threads=*/1, repeats);
  std::printf("  dram-ch4 naive : %8.1f ms  (%llu sim cycles)\n",
              mc_naive.wall_ms,
              static_cast<unsigned long long>(mc_naive.cycles));
  std::printf("  dram-ch4 gated : %8.1f ms\n", mc_gated.wall_ms);
  bool mc_identical = mc_naive.cycles == mc_gated.cycles;
  for (std::size_t i = 0; mc_identical && i < mc_naive.runs.size(); ++i) {
    mc_identical = mc_naive.runs[i].cycles == mc_gated.runs[i].cycles;
  }
  const bool mc_correct = mc_naive.correct && mc_gated.correct;
  std::printf("  dram-ch4 cycle-identical: %s, verified: %s\n",
              mc_identical ? "yes" : "NO", mc_correct ? "yes" : "NO");

  // 4c) Channel-scaling gate: the streaming requestor harness (8 masters)
  // must show >= 1.7x aggregate R utilization at 2 channels vs 1; 4- and
  // 8-channel points are recorded for the scaling trajectory.
  std::vector<double> ch_utils;
  for (const unsigned c : {1u, 2u, 4u, 8u}) {
    sys::ChannelScalingConfig ccfg;
    ccfg.channels = c;
    ccfg.masters = 8;
    ccfg.bytes_per_master = 128 * 1024;
    ch_utils.push_back(sys::measure_channel_scaling(ccfg).agg_r_util);
  }
  const double ch2_scaling = ch_utils[0] > 0 ? ch_utils[1] / ch_utils[0] : 0;
  const bool ch_scaling_ok = ch2_scaling >= kChannelScalingFloor;
  std::printf("  channel scaling (8 streams): agg R-util %.3f / %.3f / "
              "%.3f / %.3f at 1/2/4/8 ch; 2-ch scaling %.2fx (floor "
              "%.2fx) — %s\n",
              ch_utils[0], ch_utils[1], ch_utils[2], ch_utils[3],
              ch2_scaling, kChannelScalingFloor,
              ch_scaling_ok ? "ok" : "REGRESSION");

  // 5) The dram_batched strided sweep: row-hit-ratio floor check.
  const auto batched_results = sys::run_workloads(dram_batched_jobs(), 1);
  double min_hit = 1.0;
  bool batched_correct = true;
  for (const auto& r : batched_results) {
    min_hit = std::min(min_hit, r.row_hit_ratio());
    batched_correct = batched_correct && r.correct;
  }
  const bool hit_floor_ok = batched_correct &&
                            min_hit >= kPackDramStridedHitFloor;
  std::printf("  dram batched strided row-hit ratio: min %.3f "
              "(floor %.2f) — %s\n",
              min_hit, kPackDramStridedHitFloor,
              hit_floor_ok ? "ok" : "REGRESSION");

  // 6) Backend-aware-plan floors: planned (row-wise) pack-dram gemv/trmv
  // must stay at BASE parity and open-row hit rates (the PR-4 residual
  // ran them at 0.27x/0.61x with ~51%/66% hits).
  double min_dram_speedup = 1e9;
  double min_planned_hit = 1.0;
  for (std::size_t k = 0; k < std::size(kKernels); ++k) {
    if (kKernels[k] != wl::KernelKind::gemv &&
        kKernels[k] != wl::KernelKind::trmv) {
      continue;
    }
    const auto& base = dram_gated.runs[k * 2];
    const auto& pack = dram_gated.runs[k * 2 + 1];
    if (pack.cycles == 0) continue;
    min_dram_speedup =
        std::min(min_dram_speedup,
                 static_cast<double>(base.cycles) / pack.cycles);
    min_planned_hit = std::min(min_planned_hit, pack.row_hit_ratio());
  }
  const bool dram_speedup_ok =
      min_dram_speedup >= kPackDramGemvTrmvSpeedupFloor &&
      min_planned_hit >= kPackDramPlannedHitFloor;
  std::printf("  pack-dram gemv/trmv (planned row-wise): min speedup "
              "%.3fx (floor %.2fx), min hit %.3f (floor %.2f) — %s\n",
              min_dram_speedup, kPackDramGemvTrmvSpeedupFloor,
              min_planned_hit, kPackDramPlannedHitFloor,
              dram_speedup_ok ? "ok" : "REGRESSION");

  // 7) The coalesced indirect set: spmv/prank/sssp on pack-dram-coalesce.
  // The index coalescing unit must keep the open-row hit rate at or above
  // the floor; the speedups vs base-dram are recorded alongside.
  const auto coalesced_results = sys::run_workloads(dram_coalesced_jobs(), 1);
  double min_coalesced_hit = 1.0;
  bool coalesced_correct = true;
  std::vector<double> coalesced_speedups;
  for (std::size_t i = 0; i < coalesced_results.size(); ++i) {
    const auto& r = coalesced_results[i];
    min_coalesced_hit = std::min(min_coalesced_hit, r.row_hit_ratio());
    coalesced_correct = coalesced_correct && r.correct && r.coalesce_unique > 0;
    // base-dram runs sit at even offsets of the dram set, in kKernels
    // order; the indirect kernels are its last three entries.
    const auto& base = dram_gated.runs[(3 + i) * 2];
    coalesced_speedups.push_back(
        r.cycles ? static_cast<double>(base.cycles) / r.cycles : 0.0);
  }
  const bool coalesced_ok =
      coalesced_correct && min_coalesced_hit >= kCoalescedHitFloor;
  std::printf("  pack-dram-coalesce indirect: min row-hit %.3f (floor "
              "%.2f), speedups vs base-dram %.2fx/%.2fx/%.2fx — %s\n",
              min_coalesced_hit, kCoalescedHitFloor, coalesced_speedups[0],
              coalesced_speedups[1], coalesced_speedups[2],
              coalesced_ok ? "ok" : "REGRESSION");

  // 8) Open-loop latency under load: SLO-knee sweep of the three open-loop
  // systems plus a gated-vs-naive identity check on an open-loop run (the
  // driver sleeps between arrivals, so it exercises the wake scheduler in
  // a way no closed-loop set does).
  const OpenLoopCurve ol_base = run_open_loop_curve("base-256-dram");
  const OpenLoopCurve ol_pack = run_open_loop_curve("pack-256-dram");
  const OpenLoopCurve ol_coalesce =
      run_open_loop_curve("pack-256-dram-x512-g16");
  const double ol_knee_ratio =
      ol_base.knee > 0 ? ol_coalesce.knee / ol_base.knee : 0.0;
  const bool ol_correct =
      ol_base.correct && ol_pack.correct && ol_coalesce.correct;
  const bool ol_ok = ol_correct && ol_knee_ratio >= kOpenLoopKneeFloor;
  std::printf("  open-loop knees (p99 <= %.0f cyc): base %.0f, pack %.0f, "
              "coalesce %.0f req/100k; coalesce/base %.2fx (floor %.2fx) "
              "— %s\n",
              kOpenLoopSloP99, ol_base.knee, ol_pack.knee, ol_coalesce.knee,
              ol_knee_ratio, kOpenLoopKneeFloor,
              ol_ok ? "ok" : "REGRESSION");
  sys::RunResult ol_ident[2];
  for (const bool nv : {false, true}) {
    auto b = sys::ScenarioRegistry::instance().builder(
        "pack-256-dram-p" + std::to_string(kOpenLoopRefRate * 2));
    b.naive_kernel(nv);
    ol_ident[nv] = b.build()->run_open_loop(120'000, 20'000'000);
  }
  const bool ol_identical =
      ol_ident[0].cycles == ol_ident[1].cycles &&
      ol_ident[0].latency.count() == ol_ident[1].latency.count() &&
      ol_ident[0].latency.percentile(99) ==
          ol_ident[1].latency.percentile(99) &&
      ol_ident[0].queue_peak == ol_ident[1].queue_peak &&
      ol_ident[0].correct && ol_ident[1].correct;
  std::printf("  open-loop cycle-identical (gated vs naive): %s\n",
              ol_identical ? "yes" : "NO");

  // Cycle-identity across configurations is the hard constraint.
  bool identical = naive.cycles == gated.cycles;
  for (std::size_t i = 0; identical && i < naive.runs.size(); ++i) {
    identical = naive.runs[i].cycles == gated.runs[i].cycles;
  }
  bool dram_identical = dram_naive.cycles == dram_gated.cycles;
  for (std::size_t i = 0; dram_identical && i < dram_naive.runs.size(); ++i) {
    dram_identical = dram_naive.runs[i].cycles == dram_gated.runs[i].cycles;
  }
  identical = identical && dram_identical;
  const bool all_correct = naive.correct && gated.correct &&
                           dram_naive.correct && dram_gated.correct;

  const double speedup_gated = naive.wall_ms / gated.wall_ms;
  const double speedup_total = naive.wall_ms / parallel_ms;
  std::printf("  speedup gated/naive : %.2fx (serial), %.2fx (parallel)\n",
              speedup_gated, speedup_total);
  std::printf("  cycle-identical: %s, all workloads verified: %s\n",
              identical ? "yes" : "NO", all_correct ? "yes" : "NO");

  // Serial-DRAM throughput: the tracked metric of the event-driven
  // scheduler rewrite, with a floor gating CI against a regression to
  // per-cycle rescanning.
  const double dram_cycles_per_sec =
      static_cast<double>(dram_gated.cycles) / (dram_gated.wall_ms / 1000.0);
  const bool dram_throughput_ok = dram_cycles_per_sec >= kDramCyclesPerSecFloor;
  std::printf("  dram serial throughput: %.0f sim cycles/s "
              "(floor %.0f) — %s\n",
              dram_cycles_per_sec, kDramCyclesPerSecFloor,
              dram_throughput_ok ? "ok" : "REGRESSION");

  util::JsonWriter w;
  w.begin_object();
  w.key("bench").value("kernel");
  w.key("scenario_set").value("headline_summary");
  w.key("seed").value(kPerfSeed);
  w.key("jobs").value(static_cast<std::uint64_t>(naive.runs.size()));
  w.key("repeats").value(repeats);
  w.key("hardware_threads").value(hw);
  w.key("pre_pr_equiv_naive_serial_ms").value(naive.wall_ms);
  w.key("pre_pr_reference").begin_object();
  w.key("commit").value(kPrePrCommit);
  w.key("wall_ms").value(kPrePrWallMsReference);
  w.key("new_kernel_wall_ms").value(kNewWallMsAtReference);
  w.key("speedup").value(kPrePrWallMsReference / kNewWallMsAtReference);
  w.key("static_reference").value(true);
  w.key("measured").value(
      "development machine, interleaved, serial, 1 core; not re-measured "
      "at runtime — track the *_ms fields above for regressions");
  w.end_object();
  w.key("gated_serial_ms").value(gated.wall_ms);
  w.key("gated_parallel_ms").value(parallel_ms);
  w.key("speedup_gated_serial_vs_naive").value(speedup_gated);
  w.key("speedup_gated_parallel_vs_naive").value(speedup_total);
  w.key("dram_naive_serial_ms").value(dram_naive.wall_ms);
  w.key("dram_gated_serial_ms").value(dram_gated.wall_ms);
  w.key("dram_sim_cycles_total").value(dram_gated.cycles);
  w.key("dram_sim_cycles_per_sec").value(dram_cycles_per_sec);
  w.key("dram_cycles_per_sec_floor").value(kDramCyclesPerSecFloor);
  w.key("dram_throughput_pass").value(dram_throughput_ok);
  w.key("dram_cycle_identical").value(dram_identical);
  w.key("dram_mc_naive_serial_ms").value(mc_naive.wall_ms);
  w.key("dram_mc_gated_serial_ms").value(mc_gated.wall_ms);
  w.key("dram_mc_sim_cycles_total").value(mc_gated.cycles);
  w.key("dram_mc_cycle_identical").value(mc_identical);
  w.key("dram_mc_all_verified").value(mc_correct);
  w.key("channel_scaling").begin_object();
  w.key("masters").value(8);
  w.key("agg_r_util").begin_array();
  for (const double u : ch_utils) w.value(u);
  w.end_array();
  w.key("channels").begin_array();
  for (const unsigned c : {1u, 2u, 4u, 8u}) w.value(c);
  w.end_array();
  w.key("scaling_2ch").value(ch2_scaling);
  w.key("floor").value(kChannelScalingFloor);
  w.key("pass").value(ch_scaling_ok);
  w.end_object();
  w.key("sim_cycles_total").value(gated.cycles);
  w.key("sim_cycles_per_sec_gated_serial")
      .value(static_cast<double>(gated.cycles) / (gated.wall_ms / 1000.0));
  w.key("cycle_identical_naive_vs_gated").value(identical);
  w.key("all_workloads_verified").value(all_correct);
  w.key("thread_scaling").begin_array();
  for (const ScalePoint& point : scaling) {
    w.begin_object();
    w.key("threads_requested").value(point.requested);
    w.key("threads_effective").value(point.effective);
    w.key("oversubscribed").value(point.oversubscribed);
    w.key("wall_ms").value(point.wall_ms);
    w.key("dram_wall_ms").value(point.dram_wall_ms);
    w.end_object();
  }
  w.end_array();
  w.key("scenarios").begin_array();
  {
    const auto jobs = headline_jobs(false);
    for (std::size_t i = 0; i < gated.runs.size(); ++i) {
      w.begin_object();
      w.key("scenario").value(jobs[i].scenario);
      w.key("kernel").value(wl::kernel_name(kKernels[i / 3]));
      w.key("run").raw(gated.runs[i].to_json());
      w.end_object();
    }
  }
  w.end_array();
  w.key("dram_batched").begin_object();
  w.key("row_hit_floor").value(kPackDramStridedHitFloor);
  w.key("min_row_hit_ratio").value(min_hit);
  w.key("pass").value(hit_floor_ok);
  w.key("gemv_trmv_speedup_floor").value(kPackDramGemvTrmvSpeedupFloor);
  w.key("min_gemv_trmv_speedup").value(min_dram_speedup);
  w.key("planned_hit_floor").value(kPackDramPlannedHitFloor);
  w.key("min_planned_hit_ratio").value(min_planned_hit);
  w.key("speedup_pass").value(dram_speedup_ok);
  w.key("scenarios").begin_array();
  for (std::size_t i = 0; i < batched_results.size(); ++i) {
    w.begin_object();
    w.key("scenario").value("pack-dram");
    w.key("kernel").value(wl::kernel_name(kStridedKernels[i]));
    w.key("run").raw(batched_results[i].to_json());
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.key("dram_coalesced").begin_object();
  w.key("hit_floor").value(kCoalescedHitFloor);
  w.key("min_row_hit_ratio").value(min_coalesced_hit);
  w.key("pass").value(coalesced_ok);
  w.key("speedups_vs_base_dram").begin_array();
  for (const double s : coalesced_speedups) w.value(s);
  w.end_array();
  w.key("scenarios").begin_array();
  for (std::size_t i = 0; i < coalesced_results.size(); ++i) {
    w.begin_object();
    w.key("scenario").value("pack-dram-coalesce");
    w.key("kernel").value(wl::kernel_name(kIndirectKernels[i]));
    w.key("run").raw(coalesced_results[i].to_json());
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.key("open_loop").begin_object();
  w.key("slo_p99").value(kOpenLoopSloP99);
  w.key("ref_rate").value(kOpenLoopRefRate);
  w.key("rates").begin_array();
  for (const unsigned r : kOpenLoopRates) w.value(r);
  w.end_array();
  const auto emit_curve = [&w](const char* label, const OpenLoopCurve& c) {
    w.key(label).begin_object();
    w.key("knee").value(c.knee);
    w.key("p99_at_ref").value(c.p99_at_ref);
    w.key("p99").begin_array();
    for (const double v : c.p99) w.value(v);
    w.end_array();
    w.key("achieved_rate").begin_array();
    for (const double v : c.achieved) w.value(v);
    w.end_array();
    w.key("verified").value(c.correct);
    w.end_object();
  };
  emit_curve("base", ol_base);
  emit_curve("pack", ol_pack);
  emit_curve("coalesce", ol_coalesce);
  w.key("knee_ratio").value(ol_knee_ratio);
  w.key("floor").value(kOpenLoopKneeFloor);
  w.key("pass").value(ol_ok);
  w.key("identical").value(ol_identical);
  w.end_object();
  w.key("dram_scenarios").begin_array();
  {
    const auto djobs = dram_jobs(false);
    for (std::size_t i = 0; i < dram_gated.runs.size(); ++i) {
      w.begin_object();
      w.key("scenario").value(djobs[i].scenario);
      w.key("kernel").value(wl::kernel_name(kKernels[i / 2]));
      w.key("run").raw(dram_gated.runs[i].to_json());
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  const std::string doc = w.str();
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  return (identical && all_correct && hit_floor_ok && dram_speedup_ok &&
          coalesced_ok && dram_throughput_ok && mc_identical && mc_correct &&
          ch_scaling_ok && ol_ok && ol_identical)
             ? 0
             : 1;
}
