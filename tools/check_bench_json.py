#!/usr/bin/env python3
"""Validates the JSON artifacts the bench binaries emit with --json.

Checks, per experiment-grid file:
  * the document parses and has the {"bench", "quick", "experiments"} keys;
  * every experiment carries a name, a non-empty axes list and points;
  * every point's coords object has exactly one entry per declared axis,
    and its label is one of the axis's declared values;
  * every point embeds a "run" object with the RunResult core fields.

Files with "bench": "kernel" (perf_kernel's BENCH_kernel.json) are
validated against the kernel-artifact shape instead: the throughput /
identity / floor fields are present and internally consistent, every
thread-scaling point records requested vs effective threads with an
oversubscription flag, and no oversubscribed point leaks into
gated_parallel_ms (oversubscribed wall-clocks measure the host, not the
engine, so CI floors must ignore them).

Usage: check_bench_json.py FILE.json [FILE.json ...]
Exits non-zero on the first malformed artifact.
"""
import json
import sys


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    sys.exit(1)


RUN_FIELDS = {"cycles", "r_util", "correct", "row_hit_ratio",
              "coalesce_merged", "coalesce_unique", "coalesce_peak_pending",
              "coalesce_row_groups",
              "faults_injected", "faults_corrected", "faults_uncorrectable",
              "retries", "retry_timeouts", "failed_ops", "degraded",
              "latency_p50", "latency_p95", "latency_p99", "latency_max",
              "latency_count", "offered_rate", "achieved_rate", "queue_peak"}


KERNEL_FIELDS = {"seed", "hardware_threads", "gated_serial_ms",
                 "gated_parallel_ms", "dram_naive_serial_ms",
                 "dram_gated_serial_ms", "dram_sim_cycles_total",
                 "dram_sim_cycles_per_sec", "dram_cycles_per_sec_floor",
                 "dram_throughput_pass", "dram_cycle_identical",
                 "dram_mc_cycle_identical", "dram_mc_all_verified",
                 "channel_scaling",
                 "sim_cycles_total", "sim_cycles_per_sec_gated_serial",
                 "cycle_identical_naive_vs_gated", "all_workloads_verified",
                 "open_loop", "thread_scaling"}

SCALE_POINT_FIELDS = {"threads_requested", "threads_effective",
                      "oversubscribed", "wall_ms", "dram_wall_ms"}


def check_kernel_file(path, doc):
    """Validates perf_kernel's BENCH_kernel.json artifact shape."""
    missing = KERNEL_FIELDS - set(doc)
    if missing:
        fail(path, f"kernel artifact missing fields {sorted(missing)}")
    hw = doc["hardware_threads"]
    points = doc["thread_scaling"]
    if not points:
        fail(path, "empty thread_scaling series")
    honest_min = None
    for point in points:
        if not SCALE_POINT_FIELDS <= set(point):
            fail(path, f"thread_scaling point {point!r} missing fields")
        req, eff = point["threads_requested"], point["threads_effective"]
        if eff != min(req, hw):
            fail(path, f"threads_effective {eff} != min(requested {req}, "
                       f"hardware {hw})")
        if point["oversubscribed"] != (req > hw):
            fail(path, f"oversubscribed flag wrong for requested={req} "
                       f"on {hw} hardware thread(s)")
        if not point["oversubscribed"]:
            wall = point["wall_ms"]
            honest_min = wall if honest_min is None else min(honest_min, wall)
    if honest_min is None:
        fail(path, "every thread_scaling point is oversubscribed "
                   "(the serial point never is)")
    # CI floors must ignore flagged points: gated_parallel_ms may only
    # come from non-oversubscribed runs.
    if doc["gated_parallel_ms"] > honest_min * (1 + 1e-9):
        fail(path, f"gated_parallel_ms {doc['gated_parallel_ms']} exceeds "
                   f"best non-oversubscribed point {honest_min}")
    # The throughput fields must be self-consistent and the floor honored.
    derived = doc["dram_sim_cycles_total"] / (doc["dram_gated_serial_ms"]
                                              / 1000.0)
    if abs(derived - doc["dram_sim_cycles_per_sec"]) > 1e-6 * derived:
        fail(path, f"dram_sim_cycles_per_sec {doc['dram_sim_cycles_per_sec']}"
                   f" inconsistent with cycles/wall ({derived:.1f})")
    floor_ok = doc["dram_sim_cycles_per_sec"] >= doc["dram_cycles_per_sec_floor"]
    if doc["dram_throughput_pass"] != floor_ok:
        fail(path, "dram_throughput_pass disagrees with the recorded "
                   "floor comparison")
    for gate in ("dram_throughput_pass", "dram_cycle_identical",
                 "dram_mc_cycle_identical", "dram_mc_all_verified",
                 "cycle_identical_naive_vs_gated", "all_workloads_verified"):
        if not doc[gate]:
            fail(path, f"kernel artifact gate {gate} is false")
    # Channel scale-out: the 2-channel aggregate R-util scaling of the
    # streaming harness must meet the recorded floor, and the recorded
    # pass flag must agree with the recorded numbers.
    cs = doc["channel_scaling"]
    for field in ("agg_r_util", "channels", "scaling_2ch", "floor", "pass"):
        if field not in cs:
            fail(path, f"channel_scaling missing field {field!r}")
    if len(cs["agg_r_util"]) != len(cs["channels"]):
        fail(path, "channel_scaling series length mismatch")
    derived_scaling = (cs["agg_r_util"][1] / cs["agg_r_util"][0]
                       if cs["agg_r_util"][0] else 0.0)
    if abs(derived_scaling - cs["scaling_2ch"]) > 1e-6:
        fail(path, f"channel_scaling scaling_2ch {cs['scaling_2ch']} "
                   f"inconsistent with the utilization series")
    if cs["pass"] != (cs["scaling_2ch"] >= cs["floor"]):
        fail(path, "channel_scaling pass flag disagrees with the floor")
    if not cs["pass"]:
        fail(path, f"channel scaling {cs['scaling_2ch']:.2f}x below the "
                   f"{cs['floor']}x floor")
    # Open-loop latency gate: the three SLO-knee curves are present and
    # internally consistent, the recorded knee ratio matches the knees, the
    # floor comparison matches the pass flag, and the gated-vs-naive
    # open-loop identity check passed.
    ol = doc["open_loop"]
    for field in ("slo_p99", "rates", "base", "pack", "coalesce",
                  "knee_ratio", "floor", "pass", "identical"):
        if field not in ol:
            fail(path, f"open_loop missing field {field!r}")
    for label in ("base", "pack", "coalesce"):
        curve = ol[label]
        if len(curve["p99"]) != len(ol["rates"]):
            fail(path, f"open_loop {label} p99 series length mismatch")
        if not curve["verified"]:
            fail(path, f"open_loop {label} curve has unverified points")
        derived_knee = 0.0
        for rate, p99 in zip(ol["rates"], curve["p99"]):
            if p99 <= ol["slo_p99"]:
                derived_knee = max(derived_knee, rate)
        if derived_knee != curve["knee"]:
            fail(path, f"open_loop {label} knee {curve['knee']} "
                       f"inconsistent with its p99 series "
                       f"({derived_knee})")
    derived_ratio = (ol["coalesce"]["knee"] / ol["base"]["knee"]
                     if ol["base"]["knee"] else 0.0)
    if abs(derived_ratio - ol["knee_ratio"]) > 1e-6:
        fail(path, f"open_loop knee_ratio {ol['knee_ratio']} inconsistent "
                   f"with the recorded knees ({derived_ratio:.3f})")
    if ol["pass"] != (ol["knee_ratio"] >= ol["floor"]):
        fail(path, "open_loop pass flag disagrees with the floor")
    if not ol["pass"]:
        fail(path, f"open-loop knee ratio {ol['knee_ratio']:.2f}x below "
                   f"the {ol['floor']}x floor")
    if not ol["identical"]:
        fail(path, "open-loop gated vs naive runs diverged")
    print(f"{path}: ok (kernel, {len(points)} thread-scaling point(s), "
          f"{doc['dram_sim_cycles_per_sec']:.0f} dram sim cycles/s)")


def check_file(path):
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(path, f"does not parse: {e}")
    if doc.get("bench") == "kernel" and "experiments" not in doc:
        check_kernel_file(path, doc)
        return
    for key in ("bench", "quick", "experiments"):
        if key not in doc:
            fail(path, f"missing top-level key {key!r}")
    if not isinstance(doc["experiments"], list):
        fail(path, '"experiments" is not a list')
    for exp in doc["experiments"]:
        name = exp.get("experiment")
        if not name:
            fail(path, "experiment without a name")
        axes = exp.get("axes")
        if not axes:
            fail(path, f"{name}: no axes")
        axis_values = {}
        for axis in axes:
            if not axis.get("name") or not axis.get("values"):
                fail(path, f"{name}: malformed axis {axis!r}")
            axis_values[axis["name"]] = set(axis["values"])
        points = exp.get("points")
        if points is None:
            fail(path, f"{name}: no points list")
        if not points:
            # --filter can legitimately empty a grid, but an unfiltered
            # smoke run must produce points.
            fail(path, f"{name}: empty points list")
        for point in points:
            coords = point.get("coords")
            if coords is None:
                fail(path, f"{name}: point without coords")
            if set(coords) != set(axis_values):
                fail(path,
                     f"{name}: coords keys {sorted(coords)} != axes "
                     f"{sorted(axis_values)}")
            for axis, label in coords.items():
                if label not in axis_values[axis]:
                    fail(path,
                         f"{name}: coord {axis}={label!r} not a declared "
                         f"axis value")
            run = point.get("run")
            if not isinstance(run, dict) or not RUN_FIELDS <= set(run):
                fail(path, f"{name}: point run object missing core fields")
        # The coalescer sweep must actually exercise the unit: every point
        # off the baseline carries coalescer activity, the baseline none.
        if "coalesce" in axis_values:
            for point in points:
                run = point["run"]
                if point["coords"]["coalesce"] == "off":
                    if run["coalesce_unique"] != 0:
                        fail(path, f"{name}: baseline point reports "
                                   f"coalescer activity")
                elif run["coalesce_unique"] == 0:
                    fail(path,
                         f"{name}: coalesced point "
                         f"{point['coords']} saw no coalescer traffic")
        # The channel-scaling sweep must actually scale: every point
        # carries the aggregate and per-channel utilization metrics plus
        # the recorded knee, and along each fixed (masters, mapping)
        # curve the aggregate R-util grows monotonically (2% tolerance)
        # with the channel count up to that knee. (The open-loop latency
        # sweep also crosses channels but sweeps rate — it gets its own
        # shape check below.)
        if "channels" in axis_values and "rate" not in axis_values:
            curves = {}
            for point in points:
                metrics = point.get("metrics") or {}
                for field in ("agg_r_util", "min_ch_r_util",
                              "max_ch_r_util", "knee_channels"):
                    if field not in metrics:
                        fail(path, f"{name}: channel point "
                                   f"{point['coords']} missing metric "
                                   f"{field!r}")
                key = tuple(sorted((a, l)
                                   for a, l in point["coords"].items()
                                   if a != "channels"))
                curves.setdefault(key, []).append(
                    (int(point["coords"]["channels"]),
                     metrics["agg_r_util"], metrics["knee_channels"]))
            for key, series in curves.items():
                series.sort()
                knee = series[0][2]
                prev = None
                for ch, util, _ in series:
                    if ch > knee:
                        break
                    if prev is not None and util < prev * 0.98:
                        fail(path, f"{name}: aggregate R-util not "
                                   f"monotone up to the knee for "
                                   f"{dict(key)}: {util:.3f} at {ch} "
                                   f"channels < {prev:.3f}")
                    prev = util
        # The open-loop latency sweep must be self-consistent: every point
        # carries the latency/rate metrics, achieved never exceeds offered
        # (small slack for window-edge completions), and each fixed
        # (system, channels) curve agrees on one knee_rate — the highest
        # swept rate whose p99 met the SLO — with every above-knee point
        # violating the SLO (the defining property of a maximum).
        if "rate" in axis_values:
            curves = {}
            for point in points:
                metrics = point.get("metrics") or {}
                for field in ("latency_p50", "latency_p95", "latency_p99",
                              "offered_rate", "achieved_rate", "queue_peak",
                              "knee_rate", "slo_p99"):
                    if field not in metrics:
                        fail(path, f"{name}: open-loop point "
                                   f"{point['coords']} missing metric "
                                   f"{field!r}")
                if (metrics["achieved_rate"]
                        > metrics["offered_rate"] * 1.02 + 2):
                    fail(path, f"{name}: point {point['coords']} achieved "
                               f"more than it offered")
                if not (metrics["latency_p50"] <= metrics["latency_p95"]
                        <= metrics["latency_p99"]):
                    fail(path, f"{name}: point {point['coords']} has "
                               f"non-monotone latency percentiles")
                key = tuple(sorted((a, l)
                                   for a, l in point["coords"].items()
                                   if a != "rate"))
                curves.setdefault(key, []).append(metrics)
            for key, series in curves.items():
                knees = {m["knee_rate"] for m in series}
                if len(knees) != 1:
                    fail(path, f"{name}: curve {dict(key)} disagrees on "
                               f"knee_rate: {sorted(knees)}")
                knee = knees.pop()
                for m in series:
                    if (m["offered_rate"] > knee
                            and m["latency_p99"] <= m["slo_p99"]):
                        fail(path, f"{name}: curve {dict(key)} meets the "
                                   f"SLO above its recorded knee {knee}")
        # The fault-tolerance sweep must actually inject: the f0 baseline
        # stays clean, every other rate point records injections, and — in
        # quick mode, where CI validates it — no point with the full retry
        # budget may lose an op below the extreme-rate knee. (Full-size
        # runs inject proportionally more faults per op, which moves the
        # knee leftward, so the recovery assertion only binds quick runs.)
        if "fault" in axis_values:
            for point in points:
                run = point["run"]
                coords = point["coords"]
                if coords["fault"] == "f0":
                    if run["faults_injected"] != 0 or run["failed_ops"] != 0:
                        fail(path, f"{name}: fault-free baseline point "
                                   f"{coords} reports fault activity")
                    if not run["correct"]:
                        fail(path, f"{name}: fault-free baseline point "
                                   f"{coords} is incorrect")
                else:
                    if run["faults_injected"] == 0:
                        fail(path, f"{name}: fault point {coords} "
                                   f"injected nothing")
                    if (doc["quick"]
                            and coords.get("budget") == "r4"
                            and coords["fault"] in ("f20", "f100")
                            and (run["failed_ops"] != 0
                                 or not run["correct"])):
                        fail(path, f"{name}: budgeted point {coords} "
                                   f"failed to recover")
    n_exp = len(doc["experiments"])
    n_pts = sum(len(e["points"]) for e in doc["experiments"])
    print(f"{path}: ok ({doc['bench']}, {n_exp} experiment(s), "
          f"{n_pts} point(s))")


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    for path in sys.argv[1:]:
        check_file(path)


if __name__ == "__main__":
    main()
