// Ablation: decoupling-queue depth versus read-bus utilization.
//
// The paper fixes the converters' decoupling queues at depth 4 for the
// system evaluation (§III-C) and raises them to 32 for the sensitivity
// analysis "to avoid bottlenecks unrelated to our analysis" (§III-E). This
// ablation quantifies that design choice: it sweeps the depth from 1 to 32
// on strided and indirect read streams and shows where utilization
// saturates. Note the model's word path crosses two more registered FIFO
// hops than the RTL (port mux request/response stages), so model depth 8
// covers the bank round trip the RTL's depth 4 does — which is why the
// evaluation systems default to 8 (systems/config.hpp).
#include "bench_common.hpp"
#include "systems/sensitivity.hpp"

namespace {

using namespace axipack;

void emit() {
  bench::figure_header("Ablation", "decoupling-queue depth (paper: 4 in "
                       "system runs, 32 in sensitivity runs)");
  util::Table table({"depth", "strided s=1", "strided s=17", "strided avg",
                     "indirect 32/32", "indirect 32/8"});
  for (const unsigned depth : {1u, 2u, 4u, 8u, 16u, 32u}) {
    sys::SensitivityConfig cfg;
    cfg.queue_depth = depth;

    cfg.indirect = false;
    cfg.stride_elems = 1;
    const double unit = sys::measure_read_utilization(cfg).r_util;
    // Stride equal to the bank count is the pathological case prime-banked
    // memories still serialize; deeper queues hide part of the stall.
    cfg.stride_elems = 17;
    const double worst = sys::measure_read_utilization(cfg).r_util;

    double avg = 0.0;
    const int kStrides = 16;
    for (int s = 1; s <= kStrides; ++s) {
      cfg.stride_elems = s;
      avg += sys::measure_read_utilization(cfg).r_util;
    }
    avg /= kStrides;

    cfg.indirect = true;
    cfg.index_bits = 32;
    const double ind32 = sys::measure_read_utilization(cfg).r_util;
    cfg.index_bits = 8;
    const double ind8 = sys::measure_read_utilization(cfg).r_util;

    table.row()
        .cell(std::to_string(depth))
        .cell(util::fmt_pct(unit))
        .cell(util::fmt_pct(worst))
        .cell(util::fmt_pct(avg))
        .cell(util::fmt_pct(ind32))
        .cell(util::fmt_pct(ind8));
  }
  table.print(std::cout);
  std::printf("\ndesign takeaway: depth 4 recovers most of the strided "
              "utilization on 17 banks;\nrandom-index indirect streams keep "
              "gaining from deeper queues, which is why the\npaper's "
              "sensitivity study raises the depth to 32.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
