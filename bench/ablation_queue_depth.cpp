// Ablation: decoupling-queue depth versus read-bus utilization.
//
// The paper fixes the converters' decoupling queues at depth 4 for the
// system evaluation (§III-C) and raises them to 32 for the sensitivity
// analysis "to avoid bottlenecks unrelated to our analysis" (§III-E). This
// ablation quantifies that design choice: it sweeps the depth from 1 to 32
// on strided and indirect read streams and shows where utilization
// saturates. Note the model's word path crosses two more registered FIFO
// hops than the RTL (port mux request/response stages), so model depth 8
// covers the bank round trip the RTL's depth 4 does — which is why the
// evaluation systems default to 8 (systems/config.hpp).
#include "bench_common.hpp"
#include "systems/sensitivity.hpp"

namespace {

using namespace axipack;

// Stride 17 equals the bank count — the pathological case prime-banked
// memories still serialize; deeper queues hide part of the stall. "avg"
// averages strides 1..16.
sys::AxisValue stream_value(const char* label) {
  return sys::AxisValue::shaped(
      label, [](sys::PointDraft&) {});
}

void emit(bench::BenchContext& ctx) {
  bench::figure_header("Ablation", "decoupling-queue depth (paper: 4 in "
                       "system runs, 32 in sensitivity runs)");
  ctx.run(
      sys::ExperimentSpec("ablation-queue-depth")
          .param_axis("depth", "depth", {1, 2, 4, 8, 16, 32})
          .axis("stream", {stream_value("strided s=1"),
                           stream_value("strided s=17"),
                           stream_value("strided avg"),
                           stream_value("indirect 32/32"),
                           stream_value("indirect 32/8")})
          .runner([](const sys::GridPoint& p) {
            sys::SensitivityConfig cfg;
            cfg.queue_depth = static_cast<unsigned>(p.param("depth"));
            if (p.quick) cfg.num_bursts = 2;
            const std::string& stream = p.coord("stream");
            sys::PointResult out;
            double util = 0.0;
            if (stream == "strided avg") {
              const int kStrides = p.quick ? 4 : 16;
              for (int s = 1; s <= kStrides; ++s) {
                cfg.stride_elems = s;
                util += sys::measure_read_utilization(cfg).r_util;
              }
              util /= kStrides;
            } else {
              if (stream.rfind("indirect", 0) == 0) {
                cfg.indirect = true;
                cfg.index_bits = stream == "indirect 32/8" ? 8 : 32;
              } else {
                cfg.stride_elems = stream == "strided s=17" ? 17 : 1;
              }
              util = sys::measure_read_utilization(cfg).r_util;
            }
            out.metrics["r_util"] = util;
            return out;
          }));
  std::printf("\ndesign takeaway: depth 4 recovers most of the strided "
              "utilization on 17 banks;\nrandom-index indirect streams keep "
              "gaining from deeper queues, which is why the\npaper's "
              "sensitivity study raises the depth to 32.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
