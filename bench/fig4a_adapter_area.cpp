// Fig. 4a: adapter area versus clock constraint for 64/128/256-bit buses.
//
// Paper reference: 69 / 130 / 257 kGE at 1 GHz; minimum periods 787 / 800 /
// 839 ps; area scales linearly with bus width and gracefully with clock.
#include "bench_common.hpp"
#include "energy/area_model.hpp"

namespace {

using namespace axipack;

void emit() {
  bench::figure_header("Fig. 4a", "adapter area vs minimum clock");
  util::Table table({"clock (ps)", "64b (kGE)", "128b (kGE)", "256b (kGE)"});
  for (const double clk : {800.0, 839.0, 900.0, 1000.0, 1250.0, 1500.0,
                           2000.0, 2500.0, 3000.0}) {
    table.row().cell(clk, 0);
    for (const unsigned bus : {64u, 128u, 256u}) {
      const auto area = energy::adapter_area_kge(bus, clk);
      table.cell(area.has_value() ? util::fmt(*area, 1) : std::string("—"));
    }
  }
  table.print(std::cout);
  std::printf("\nminimum periods: %.0f / %.0f / %.0f ps "
              "(paper: 787 / 800 / 839 ps)\n",
              energy::adapter_min_period_ps(64),
              energy::adapter_min_period_ps(128),
              energy::adapter_min_period_ps(256));
  std::printf("area @1 GHz: %.0f / %.0f / %.0f kGE "
              "(paper: 69 / 130 / 257 kGE)\n\n",
              *energy::adapter_area_kge(64, 1000),
              *energy::adapter_area_kge(128, 1000),
              *energy::adapter_area_kge(256, 1000));
}

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
