// Fig. 4a: adapter area versus clock constraint for 64/128/256-bit buses.
//
// Paper reference: 69 / 130 / 257 kGE at 1 GHz; minimum periods 787 / 800 /
// 839 ps; area scales linearly with bus width and gracefully with clock.
#include "bench_common.hpp"
#include "energy/area_model.hpp"

namespace {

using namespace axipack;

void emit(bench::BenchContext& ctx) {
  bench::figure_header("Fig. 4a", "adapter area vs minimum clock");
  ctx.run(
      sys::ExperimentSpec("fig4a")
          .param_axis("clock_ps", "clock_ps",
                      {800, 839, 900, 1000, 1250, 1500, 2000, 2500, 3000})
          .param_axis("bus_bits", "bus_bits", {64, 128, 256})
          .runner([](const sys::GridPoint& p) {
            sys::PointResult out;
            const auto area = energy::adapter_area_kge(
                static_cast<unsigned>(p.param("bus_bits")),
                p.param("clock_ps"));
            // Infeasible below the minimum period: no area metric.
            if (area.has_value()) out.metrics["kge"] = *area;
            return out;
          }));
  std::printf("\nminimum periods: %.0f / %.0f / %.0f ps "
              "(paper: 787 / 800 / 839 ps)\n",
              energy::adapter_min_period_ps(64),
              energy::adapter_min_period_ps(128),
              energy::adapter_min_period_ps(256));
  std::printf("area @1 GHz: %.0f / %.0f / %.0f kGE "
              "(paper: 69 / 130 / 257 kGE)\n\n",
              *energy::adapter_area_kge(64, 1000),
              *energy::adapter_area_kge(128, 1000),
              *energy::adapter_area_kge(256, 1000));
}

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
