// Fig. 5b: strided-read bus utilization versus element size and bank count,
// averaged across element strides 0..63.
//
// Paper reference: prime bank counts clearly win on strided accesses (no
// stride pathologies except multiples of the bank count); more banks help
// everywhere; larger elements see fewer conflicts. 17 banks deliver ~95% of
// ideal performance on strided reads.
#include "bench_common.hpp"
#include "systems/sensitivity.hpp"

namespace {

using namespace axipack;

void emit() {
  bench::figure_header("Fig. 5b",
                       "strided read utilization (avg over strides 0..63)");
  const unsigned banks[] = {8, 11, 16, 17, 31, 32};
  util::Table table({"elem size", "8", "11", "16", "17", "31", "32"});
  double util17_sum = 0.0;
  int util17_count = 0;
  for (const unsigned es : {32u, 64u, 128u, 256u}) {
    table.row().cell(std::to_string(es) + "b");
    for (const unsigned b : banks) {
      const double util = sys::strided_util_avg(es, b);
      if (b == 17) {
        util17_sum += util;
        ++util17_count;
      }
      table.cell(util::fmt_pct(util));
    }
  }
  table.print(std::cout);
  std::printf("\n17-bank average across element sizes: %.1f%% "
              "(paper: ~95%% of ideal on strided reads)\n",
              util17_sum / util17_count * 100.0);
  std::printf("paper shape: prime counts beat power-of-two; utilization "
              "rises with banks and element size\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
