// Fig. 5b: strided-read bus utilization versus element size and bank count,
// averaged across element strides 0..63.
//
// Paper reference: prime bank counts clearly win on strided accesses (no
// stride pathologies except multiples of the bank count); more banks help
// everywhere; larger elements see fewer conflicts. 17 banks deliver ~95% of
// ideal performance on strided reads.
#include "bench_common.hpp"
#include "systems/sensitivity.hpp"

namespace {

using namespace axipack;

void emit(bench::BenchContext& ctx) {
  bench::figure_header("Fig. 5b",
                       "strided read utilization (avg over strides 0..63)");
  auto spec =
      sys::ExperimentSpec("fig5b")
          .param_axis("elem_bits", "elem_bits", {32, 64, 128, 256})
          .param_axis("banks", "banks", {8, 11, 16, 17, 31, 32})
          .runner([](const sys::GridPoint& p) {
            sys::PointResult out;
            out.metrics["r_util_avg"] = sys::strided_util_avg(
                static_cast<unsigned>(p.param("elem_bits")),
                static_cast<unsigned>(p.param("banks")),
                /*bus_bytes=*/32,
                /*max_stride=*/p.quick ? 15 : 63);
            return out;
          });
  // strided_util_avg fans its per-stride runs over its own thread pool,
  // so the outer grid stays serial — pinned after prepare() so a --threads
  // flag cannot reintroduce nested pools.
  ctx.prepare(spec);
  spec.threads(1);
  const auto& results = ctx.report(spec.run());
  double util17_sum = 0.0;
  int util17_count = 0;
  for (const sys::ResultRow& row : results.rows()) {
    if (row.coord("banks") != "17") continue;
    util17_sum += row.metrics.at("r_util_avg");
    ++util17_count;
  }
  if (util17_count > 0) {
    std::printf("\n17-bank average across element sizes: %.1f%% "
                "(paper: ~95%% of ideal on strided reads)\n",
                util17_sum / util17_count * 100.0);
  }
  std::printf("paper shape: prime counts beat power-of-two; utilization "
              "rises with banks and element size\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
