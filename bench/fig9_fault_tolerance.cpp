// Fig. 9 (extension): fault tolerance — goodput and recovery cost under
// injected fault rate x master retry budget on the PACK DRAM SoC.
//
// The fault plan injects the default mixed profile (link bit flips, burst
// truncations and stalls, ECC-correctable and uncorrectable DRAM reads,
// dropped writes, packed-beat corruption) at F times the base rates; the
// masters recover through bounded retry with exponential backoff. Swept
// here: F in {0, 20, 100, 400} against a total-attempt budget in
// {1, 2, 4}, for one indirect and one strided kernel.
//
// Measured shape: budget 1 (error detection without replay) loses data
// on the first uncorrectable event at every nonzero rate. Budget >= 2
// absorbs moderate rates — goodput (payload bytes per cycle) sags only
// by the replayed bursts and backoff windows — and the curve finally
// knees at the extreme F = 400 point, where per-attempt failure
// probability compounds faster than the budget grows. (Faults are
// per-event, so full-size runs inject proportionally more per op and
// the knee moves leftward without --quick.) The speedup
// column (baseline join on f0) prices recovery directly;
// `recovery_cyc` is that price per retry.
#include "bench_common.hpp"

namespace {

using namespace axipack;

sys::AxisValue budget_value(unsigned attempts) {
  sys::AxisValue v = sys::AxisValue::shaped(
      "r" + std::to_string(attempts), [attempts](sys::PointDraft& d) {
        d.builder_patches.push_back([attempts](sys::SystemBuilder& b) {
          sim::RetryConfig rc;
          rc.max_attempts = attempts;
          rc.timeout_cycles = 50'000;
          rc.backoff = 16;
          b.retry(rc);
        });
      });
  return v;
}

void emit(bench::BenchContext& ctx) {
  bench::figure_header(
      "Fig. 9", "fault tolerance (fault-rate scale x retry budget)");

  // Fault axis: the parametric pack-256-dram-f{F} family (f0 = plan
  // attached, zero rates — the fault-free baseline on identical wiring).
  std::vector<sys::AxisValue> rates;
  for (const unsigned scale : {0u, 20u, 100u, 400u}) {
    sys::AxisValue v = sys::AxisValue::scenario(
        "pack-256-dram-f" + std::to_string(scale));
    v.label = "f" + std::to_string(scale);
    rates.push_back(std::move(v));
  }

  auto spec = sys::ExperimentSpec("fig9")
                  .kernels_axis({wl::KernelKind::spmv, wl::KernelKind::gemv})
                  .axis("fault", std::move(rates))
                  .axis("budget", {budget_value(1), budget_value(2),
                                   budget_value(4)})
                  .baseline("fault", "f0");
  sys::ResultSet results = ctx.prepare(spec).run();

  // Goodput and recovery accounting on every row; recovery latency per
  // retry against the row's f0 partner.
  unsigned lost_r1 = 0;
  unsigned lost_budgeted = 0;
  for (sys::ResultRow& row : results.mutable_rows()) {
    const sys::RunResult& r = row.run;
    if (r.cycles == 0) continue;
    row.metrics["goodput_bpc"] =
        static_cast<double>(r.bus.r_payload_bytes) /
        static_cast<double>(r.cycles);
    row.metrics["faults"] = static_cast<double>(r.faults_injected);
    row.metrics["retries"] = static_cast<double>(r.retries);
    row.metrics["failed"] = static_cast<double>(r.failed_ops);
    if (r.failed_ops > 0) {
      if (row.coord("budget") == "r1") ++lost_r1;
      else ++lost_budgeted;
    }
    if (row.coord("fault") == "f0") continue;
    const auto* base = results.find({{"kernel", row.coord("kernel")},
                                     {"fault", "f0"},
                                     {"budget", row.coord("budget")}});
    const std::uint64_t recov = r.retries + r.retry_timeouts;
    if (base != nullptr && base->run.cycles != 0 && recov > 0 &&
        r.cycles > base->run.cycles) {
      row.metrics["recovery_cyc"] =
          static_cast<double>(r.cycles - base->run.cycles) /
          static_cast<double>(recov);
    }
  }
  ctx.report(std::move(results));
  std::printf("\nshape: budget 1 detects but cannot recover — %u run(s) "
              "lost data at nonzero rates, as expected; budgets >= 2 "
              "absorbed all faults except %u run(s) at the extreme-rate "
              "knee, trading goodput for replay + backoff\n\n",
              lost_r1, lost_budgeted);
}

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
