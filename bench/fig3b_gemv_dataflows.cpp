// Fig. 3b: gemv row-wise vs column-wise dataflows on all three systems.
//
// Paper reference: row-wise flows are contiguous, so BASE == PACK ~= IDEAL,
// but reductions cap BASE utilization at 37%. Column-wise flows hit 87%
// utilization on PACK and are fastest overall on PACK/IDEAL, while on BASE
// the per-element strided cost makes column-wise the worst option.
#include "bench_common.hpp"
#include "systems/runner.hpp"

namespace {

using namespace axipack;

void emit() {
  bench::figure_header("Fig. 3b", "gemv dataflows compared (n=256)");
  util::Table table({"system", "dataflow", "cycles", "R util", "paper"});
  // All 6 points are independent systems: sweep them over the thread pool.
  std::vector<sys::WorkloadJob> jobs;
  for (const auto df : {wl::Dataflow::rowwise, wl::Dataflow::colwise}) {
    for (const auto kind : {sys::SystemKind::base, sys::SystemKind::pack,
                            sys::SystemKind::ideal}) {
      auto cfg = sys::default_workload(wl::KernelKind::gemv, kind);
      cfg.dataflow = df;
      jobs.push_back({sys::scenario_name(kind), cfg});
    }
  }
  const auto results = sys::run_workloads(jobs);
  std::size_t i = 0;
  for (const auto df : {wl::Dataflow::rowwise, wl::Dataflow::colwise}) {
    for (const auto kind : {sys::SystemKind::base, sys::SystemKind::pack,
                            sys::SystemKind::ideal}) {
      const auto& r = results[i++];
      std::string note;
      if (df == wl::Dataflow::rowwise && kind == sys::SystemKind::base) {
        note = "R util ~37%";
      } else if (df == wl::Dataflow::colwise &&
                 kind == sys::SystemKind::pack) {
        note = "R util ~87%";
      }
      table.row()
          .cell(sys::system_name(kind))
          .cell(df == wl::Dataflow::rowwise ? "row-wise" : "col-wise")
          .cell(r.cycles)
          .cell(util::fmt_pct(r.r_util))
          .cell(note);
    }
  }
  table.print(std::cout);
  std::printf("\npaper shape: col-wise slowest on BASE, fastest on "
              "PACK/IDEAL; row-wise nearly\nidentical across systems\n\n");
}

void bm_gemv_col_pack(benchmark::State& state) {
  for (auto _ : state) {
    auto cfg = sys::default_workload(wl::KernelKind::gemv,
                                     sys::SystemKind::pack);
    cfg.dataflow = wl::Dataflow::colwise;
    const auto r =
        sys::run_workload(sys::scenario_name(sys::SystemKind::pack), cfg);
    state.counters["sim_cycles"] = static_cast<double>(r.cycles);
  }
}
BENCHMARK(bm_gemv_col_pack)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
