// Fig. 3b: gemv row-wise vs column-wise dataflows on all three systems.
//
// Paper reference: row-wise flows are contiguous, so BASE == PACK ~= IDEAL,
// but reductions cap BASE utilization at 37%. Column-wise flows hit 87%
// utilization on PACK and are fastest overall on PACK/IDEAL, while on BASE
// the per-element strided cost makes column-wise the worst option.
#include "bench_common.hpp"

namespace {

using namespace axipack;

void emit(bench::BenchContext& ctx) {
  bench::figure_header("Fig. 3b", "gemv dataflows compared (n=256)");
  ctx.run(
      sys::ExperimentSpec("fig3b")
          .kernels_axis({wl::KernelKind::gemv})
          .axis("dataflow",
                {sys::AxisValue::dataflow(wl::Dataflow::rowwise),
                 sys::AxisValue::dataflow(wl::Dataflow::colwise)})
          .systems_axis({sys::SystemKind::base, sys::SystemKind::pack,
                         sys::SystemKind::ideal}));
  std::printf("\npaper: BASE row-wise R util ~37%%, PACK col-wise R util "
              "~87%%\n");
  std::printf("paper shape: col-wise slowest on BASE, fastest on "
              "PACK/IDEAL; row-wise nearly\nidentical across systems\n\n");
}

void bm_gemv_col_pack(benchmark::State& state) {
  for (auto _ : state) {
    auto cfg = sys::plan_workload(wl::KernelKind::gemv,
                                  sys::scenario_name(sys::SystemKind::pack));
    cfg.dataflow = wl::Dataflow::colwise;
    const auto r =
        sys::run_workload(sys::scenario_name(sys::SystemKind::pack), cfg);
    state.counters["sim_cycles"] = static_cast<double>(r.cycles);
  }
}
BENCHMARK(bm_gemv_col_pack)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
