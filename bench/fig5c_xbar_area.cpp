// Fig. 5c: bank crossbar area versus bank count, split into crossbar
// wiring/muxing and the modulo/divider units prime counts require.
//
// Paper reference: power-of-two crossbars are cheaper; the relative prime
// overhead shrinks with bank count; 17 banks is the chosen area-performance
// sweet spot (95% / 81% of ideal on strided / indirect reads).
#include "bench_common.hpp"
#include "energy/area_model.hpp"
#include "util/bits.hpp"

namespace {

using namespace axipack;

void emit() {
  bench::figure_header("Fig. 5c", "bank crossbar area");
  util::Table table({"banks", "crossbar kGE", "modulo kGE", "divider kGE",
                     "total kGE", "prime"});
  for (const unsigned banks : {8u, 11u, 16u, 17u, 31u, 32u}) {
    const auto a = energy::bank_xbar_area_kge(banks);
    table.row()
        .cell(std::uint64_t{banks})
        .cell(a.crossbar, 1)
        .cell(a.modulo, 1)
        .cell(a.divider, 1)
        .cell(a.total(), 1)
        .cell(util::is_prime(banks) ? "yes" : "no");
  }
  table.print(std::cout);
  const auto a17 = energy::bank_xbar_area_kge(17);
  const auto a16 = energy::bank_xbar_area_kge(16);
  std::printf("\nprime overhead at 17 banks: %.0f%% over the pure crossbar "
              "(modulo + divider)\n",
              (a17.total() / a17.crossbar - 1.0) * 100.0);
  std::printf("17-bank vs 16-bank total: +%.1f kGE — the paper's chosen "
              "area-performance tradeoff\n\n",
              a17.total() - a16.total());
}

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
