// Fig. 5c: bank crossbar area versus bank count, split into crossbar
// wiring/muxing and the modulo/divider units prime counts require.
//
// Paper reference: power-of-two crossbars are cheaper; the relative prime
// overhead shrinks with bank count; 17 banks is the chosen area-performance
// sweet spot (95% / 81% of ideal on strided / indirect reads).
#include "bench_common.hpp"
#include "energy/area_model.hpp"
#include "util/bits.hpp"

namespace {

using namespace axipack;

void emit(bench::BenchContext& ctx) {
  bench::figure_header("Fig. 5c", "bank crossbar area");
  ctx.run(
      sys::ExperimentSpec("fig5c")
          .param_axis("banks", "banks", {8, 11, 16, 17, 31, 32})
          .runner([](const sys::GridPoint& p) {
            const unsigned banks = static_cast<unsigned>(p.param("banks"));
            const auto a = energy::bank_xbar_area_kge(banks);
            sys::PointResult out;
            out.metrics["crossbar_kge"] = a.crossbar;
            out.metrics["modulo_kge"] = a.modulo;
            out.metrics["divider_kge"] = a.divider;
            out.metrics["total_kge"] = a.total();
            out.metrics["prime"] = util::is_prime(banks) ? 1.0 : 0.0;
            return out;
          }));
  const auto a17 = energy::bank_xbar_area_kge(17);
  const auto a16 = energy::bank_xbar_area_kge(16);
  std::printf("\nprime overhead at 17 banks: %.0f%% over the pure crossbar "
              "(modulo + divider)\n",
              (a17.total() / a17.crossbar - 1.0) * 100.0);
  std::printf("17-bank vs 16-bank total: +%.1f kGE — the paper's chosen "
              "area-performance tradeoff\n\n",
              a17.total() - a16.total());
}

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
