// Shared CLI + emission layer for the figure-reproduction benches.
//
// Every bench binary declares its grids as ExperimentSpecs and runs them
// through a BenchContext, which applies the common command line:
//
//   --quick           shrink workloads for smoke runs (CI bench job)
//   --csv             emit machine-readable CSV instead of aligned tables
//   --json=PATH       write all result sets as one JSON artifact
//   --filter=SUBSTR   keep only grid points with a matching axis label
//   --threads=N       sweep thread-pool width (0 = default, 1 = serial)
//   --gbench          run the google-benchmark timers the binary registered
//                     (--benchmark_* flags are forwarded)
//
// Unknown flags are rejected with a usage message and a non-zero exit.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "systems/experiment.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace axipack::bench {

/// Prints the standard figure header.
inline void figure_header(const char* fig, const char* title) {
  std::printf("==========================================================\n");
  std::printf("%s — %s\n", fig, title);
  std::printf("==========================================================\n");
}

struct BenchOptions {
  bool quick = false;
  bool csv = false;
  bool gbench = false;
  unsigned threads = 0;
  std::string json_path;
  std::string filter;
};

/// Per-invocation state the emit() functions run against: the parsed
/// options plus the result sets collected for the --json artifact.
class BenchContext {
 public:
  explicit BenchContext(std::string bench_name, BenchOptions opts)
      : bench_name_(std::move(bench_name)), opts_(std::move(opts)) {}

  const BenchOptions& opts() const { return opts_; }
  bool quick() const { return opts_.quick; }

  /// Applies the CLI options (quick/filter/threads) to the spec, runs it,
  /// prints the result (aligned table, or CSV under --csv) and registers
  /// it for the --json artifact. The returned reference stays valid for
  /// the whole emit() call.
  const sys::ResultSet& run(sys::ExperimentSpec spec) {
    return report(prepare(spec).run());
  }

  /// Applies the CLI options to a spec without running it — for benches
  /// that run the spec themselves, enrich the rows with derived metrics
  /// (mutable_rows()) and then report() the set.
  sys::ExperimentSpec& prepare(sys::ExperimentSpec& spec) {
    if (opts_.quick) spec.quick(true);
    if (!opts_.filter.empty()) spec.filter(opts_.filter);
    if (opts_.threads != 0) spec.threads(opts_.threads);
    return spec;
  }

  /// Registers an already-run ResultSet (for benches that post-process
  /// before printing) and prints it like run() does.
  const sys::ResultSet& report(sys::ResultSet set) {
    if (opts_.csv) {
      std::cout << "experiment: " << set.name() << '\n';
      set.write_csv(std::cout);
    } else {
      set.print_table(std::cout);
    }
    results_.push_back(std::move(set));
    return results_.back();
  }

  /// Writes the collected result sets as one JSON artifact. Returns false
  /// (after complaining on stderr) when the file cannot be written.
  bool write_json_artifact() const {
    if (opts_.json_path.empty()) return true;
    util::JsonWriter w;
    w.begin_object();
    w.key("bench").value(bench_name_);
    w.key("quick").value(opts_.quick);
    w.key("experiments").begin_array();
    for (const sys::ResultSet& set : results_) set.write_json(w);
    w.end_array();
    w.end_object();
    std::ofstream out(opts_.json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", opts_.json_path.c_str());
      return false;
    }
    out << w.str() << '\n';
    std::printf("wrote %s\n", opts_.json_path.c_str());
    return true;
  }

 private:
  std::string bench_name_;
  BenchOptions opts_;
  std::deque<sys::ResultSet> results_;  ///< deque: stable references
};

inline void print_usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--quick] [--csv] [--json=PATH] "
               "[--filter=SUBSTR] [--threads=N] [--gbench "
               "[--benchmark_*...]]\n",
               argv0);
}

/// Main-like entry: parses the common CLI, runs `emit(ctx)` (which prints
/// the figure tables and registers result sets), writes the --json
/// artifact, then runs google-benchmark if --gbench was passed. Unknown
/// flags are a usage error (non-zero exit).
inline int run_bench_main(int argc, char** argv,
                          void (*emit)(BenchContext&)) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--quick") == 0) {
      opts.quick = true;
    } else if (std::strcmp(arg, "--csv") == 0) {
      opts.csv = true;
    } else if (std::strcmp(arg, "--gbench") == 0) {
      opts.gbench = true;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      opts.json_path = arg + 7;
    } else if (std::strncmp(arg, "--filter=", 9) == 0) {
      opts.filter = arg + 9;
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      char* end = nullptr;
      const long n = std::strtol(arg + 10, &end, 10);
      if (end == arg + 10 || end == nullptr || *end != '\0' || n < 0) {
        std::fprintf(stderr, "%s: bad --threads value \"%s\"\n", argv[0],
                     arg + 10);
        print_usage(argv[0]);
        return 2;
      }
      opts.threads = static_cast<unsigned>(n);
    } else if (std::strncmp(arg, "--benchmark_", 12) == 0) {
      // Forwarded to google-benchmark below (only meaningful with
      // --gbench).
    } else if (std::strcmp(arg, "--help") == 0 ||
               std::strcmp(arg, "-h") == 0) {
      print_usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "%s: unknown flag \"%s\"\n", argv[0], arg);
      print_usage(argv[0]);
      return 2;
    }
  }

  // Bench name = binary basename (the figure the binary reproduces).
  std::string name = argv[0];
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);

  BenchContext ctx(name, opts);
  emit(ctx);
  if (!ctx.write_json_artifact()) return 1;
  if (opts.gbench) {
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}

}  // namespace axipack::bench
