// Shared helpers for the figure-reproduction benches: every binary prints
// the paper-style series with `paper:` reference rows, then (optionally)
// runs google-benchmark timers over representative simulations when invoked
// with --gbench.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "util/table.hpp"

namespace axipack::bench {

/// Prints the standard figure header.
inline void figure_header(const char* fig, const char* title) {
  std::printf("==========================================================\n");
  std::printf("%s — %s\n", fig, title);
  std::printf("==========================================================\n");
}

/// Runs main-like entry: `emit()` prints the figure tables; if --gbench is
/// passed, google-benchmark runs whatever benchmarks the binary registered.
inline int run_bench_main(int argc, char** argv, void (*emit)()) {
  bool gbench = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gbench") == 0) gbench = true;
  }
  emit();
  if (gbench) {
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}

}  // namespace axipack::bench
