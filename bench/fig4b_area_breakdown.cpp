// Fig. 4b: hierarchical area breakdown of the 256-bit adapter.
//
// Paper reference: indir W 74 kGE (29%), indir R 73 (28%), stride W 37
// (14%), stride R 36 (14%), AXI4 conv 26 (10%), memory mux 9 (3%), AXI
// demux 3 (1%). Read/write converters are near-identical in size; the
// two-stage indirect converters are roughly double the strided ones.
#include "bench_common.hpp"
#include "energy/area_model.hpp"

namespace {

using namespace axipack;

struct BlockRef {
  const char* name;
  double paper_kge;
  double paper_share;
};

const BlockRef kBlocks[] = {
    {"indirect W converter", 74, 0.29}, {"indirect R converter", 73, 0.28},
    {"strided W converter", 37, 0.14},  {"strided R converter", 36, 0.14},
    {"base AXI4 converter", 26, 0.10},  {"memory mux", 9, 0.03},
    {"AXI demux", 3, 0.01},             {"total", 258, 1.00},
};

double block_kge(const energy::AdapterBreakdown& b, const std::string& name) {
  if (name == "indirect W converter") return b.indirect_w;
  if (name == "indirect R converter") return b.indirect_r;
  if (name == "strided W converter") return b.strided_w;
  if (name == "strided R converter") return b.strided_r;
  if (name == "base AXI4 converter") return b.base_conv;
  if (name == "memory mux") return b.mem_mux;
  if (name == "AXI demux") return b.axi_demux;
  return b.total();
}

void emit(bench::BenchContext& ctx) {
  bench::figure_header("Fig. 4b", "adapter area breakdown (256-bit)");
  std::vector<sys::AxisValue> blocks;
  for (const BlockRef& ref : kBlocks) {
    blocks.push_back(sys::AxisValue::shaped(ref.name, {}));
  }
  ctx.run(
      sys::ExperimentSpec("fig4b")
          .axis("block", std::move(blocks))
          .runner([](const sys::GridPoint& p) {
            const auto b = energy::adapter_breakdown_kge(256);
            const std::string& name = p.coord("block");
            sys::PointResult out;
            out.metrics["kge"] = block_kge(b, name);
            out.metrics["share"] = block_kge(b, name) / b.total();
            for (const BlockRef& ref : kBlocks) {
              if (name == ref.name) {
                out.metrics["paper_kge"] = ref.paper_kge;
                out.metrics["paper_share"] = ref.paper_share;
              }
            }
            return out;
          }));
  const auto b = energy::adapter_breakdown_kge(256);
  std::printf("\nindirect/strided converter size ratio: %.2f "
              "(paper: ~2x, due to the two-stage design)\n",
              b.indirect_r / b.strided_r);
  std::printf("adapter / Ara area: %.1f%% (paper: 6.2%%)\n\n",
              b.total() / energy::ara_area_kge(8) * 100.0);
}

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
