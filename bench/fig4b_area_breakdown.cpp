// Fig. 4b: hierarchical area breakdown of the 256-bit adapter.
//
// Paper reference: indir W 74 kGE (29%), indir R 73 (28%), stride W 37
// (14%), stride R 36 (14%), AXI4 conv 26 (10%), memory mux 9 (3%), AXI
// demux 3 (1%). Read/write converters are near-identical in size; the
// two-stage indirect converters are roughly double the strided ones.
#include "bench_common.hpp"
#include "energy/area_model.hpp"

namespace {

using namespace axipack;

void emit() {
  bench::figure_header("Fig. 4b", "adapter area breakdown (256-bit)");
  const auto b = energy::adapter_breakdown_kge(256);
  const double total = b.total();
  util::Table table({"block", "kGE", "share", "paper kGE", "paper share"});
  const struct {
    const char* name;
    double kge;
    double paper_kge;
    const char* paper_share;
  } rows[] = {
      {"indirect W converter", b.indirect_w, 74, "29%"},
      {"indirect R converter", b.indirect_r, 73, "28%"},
      {"strided W converter", b.strided_w, 37, "14%"},
      {"strided R converter", b.strided_r, 36, "14%"},
      {"base AXI4 converter", b.base_conv, 26, "10%"},
      {"memory mux", b.mem_mux, 9, "3%"},
      {"AXI demux", b.axi_demux, 3, "1%"},
  };
  for (const auto& row : rows) {
    table.row()
        .cell(row.name)
        .cell(row.kge, 1)
        .cell(util::fmt_pct(row.kge / total))
        .cell(row.paper_kge, 0)
        .cell(row.paper_share);
  }
  table.row().cell("total").cell(total, 1).cell("100%").cell(258.0, 0).cell(
      "100%");
  table.print(std::cout);
  std::printf("\nindirect/strided converter size ratio: %.2f "
              "(paper: ~2x, due to the two-stage design)\n",
              b.indirect_r / b.strided_r);
  std::printf("adapter / Ara area: %.1f%% (paper: 6.2%%)\n\n",
              total / energy::ara_area_kge(8) * 100.0);
}

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
