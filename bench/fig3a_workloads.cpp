// Fig. 3a: speedups over BASE and read-bus utilizations (with and without
// index traffic) for all six workloads on the three systems.
//
// Paper reference points (256-bit bus): peak speedups 5.4x (ismt) strided /
// 2.4x (spmv) indirect; bus utilizations up to 87% (gemv) / 39% (sssp);
// PACK reaches ~97% of IDEAL on average.
#include "bench_common.hpp"

namespace {

using namespace axipack;

struct PaperRef {
  wl::KernelKind kernel;
  double pack_speedup;  ///< approximate bar heights from Fig. 3a
  double ideal_speedup;
  double pack_r_util;
};

// Reference values read from the published figure (approximate where the
// paper gives no exact number in the text).
const PaperRef kPaper[] = {
    {wl::KernelKind::ismt, 5.4, 5.9, 0.50},
    {wl::KernelKind::gemv, 2.4, 2.5, 0.87},
    {wl::KernelKind::trmv, 2.0, 2.1, 0.72},
    {wl::KernelKind::spmv, 2.4, 2.5, 0.33},
    {wl::KernelKind::prank, 2.2, 2.3, 0.35},
    {wl::KernelKind::sssp, 2.1, 2.2, 0.39},
};

void emit(bench::BenchContext& ctx) {
  bench::figure_header("Fig. 3a", "speedups and R-bus utilizations");
  const auto& results = ctx.run(
      sys::ExperimentSpec("fig3a")
          .kernels_axis({wl::KernelKind::ismt, wl::KernelKind::gemv,
                         wl::KernelKind::trmv, wl::KernelKind::spmv,
                         wl::KernelKind::prank, wl::KernelKind::sssp})
          .systems_axis({sys::SystemKind::base, sys::SystemKind::pack,
                         sys::SystemKind::ideal})
          .baseline("system", "base"));

  double frac_sum = 0.0;
  int frac_count = 0;
  for (const PaperRef& ref : kPaper) {
    const auto* pack =
        results.find({{"kernel", wl::kernel_name(ref.kernel)},
                      {"system", "pack"}});
    const auto* ideal =
        results.find({{"kernel", wl::kernel_name(ref.kernel)},
                      {"system", "ideal"}});
    if (pack == nullptr || ideal == nullptr) continue;
    frac_sum += static_cast<double>(ideal->run.cycles) / pack->run.cycles;
    ++frac_count;
    std::printf("%-5s paper: pack %.1fx / ideal %.1fx / R-util %s  —  "
                "measured: pack %s / ideal %s / R-util %s\n",
                wl::kernel_name(ref.kernel), ref.pack_speedup,
                ref.ideal_speedup, util::fmt_pct(ref.pack_r_util).c_str(),
                pack->speedup ? (util::fmt(*pack->speedup, 2) + "x").c_str()
                              : "-",
                ideal->speedup
                    ? (util::fmt(*ideal->speedup, 2) + "x").c_str()
                    : "-",
                util::fmt_pct(pack->run.r_util).c_str());
  }
  if (frac_count > 0) {
    std::printf("\nPACK reaches %.1f%% of IDEAL on average (paper: 97%%)\n",
                frac_sum / frac_count * 100.0);
  }
  std::printf("all workloads verified: %s\n\n",
              results.all_correct() ? "yes" : "NO");
}

void bm_fig3a_pack_spmv(benchmark::State& state) {
  for (auto _ : state) {
    const auto r = sys::run_default(wl::KernelKind::spmv,
                                    sys::SystemKind::pack);
    state.counters["sim_cycles"] = static_cast<double>(r.cycles);
  }
}
BENCHMARK(bm_fig3a_pack_spmv)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
