// Fig. 3a: speedups over BASE and read-bus utilizations (with and without
// index traffic) for all six workloads on the three systems.
//
// Paper reference points (256-bit bus): peak speedups 5.4x (ismt) strided /
// 2.4x (spmv) indirect; bus utilizations up to 87% (gemv) / 39% (sssp);
// PACK reaches ~97% of IDEAL on average.
#include "bench_common.hpp"
#include "systems/runner.hpp"

namespace {

using namespace axipack;

struct PaperRef {
  wl::KernelKind kernel;
  double pack_speedup;  ///< approximate bar heights from Fig. 3a
  double ideal_speedup;
  double pack_r_util;
};

// Reference values read from the published figure (approximate where the
// paper gives no exact number in the text).
const PaperRef kPaper[] = {
    {wl::KernelKind::ismt, 5.4, 5.9, 0.50},
    {wl::KernelKind::gemv, 2.4, 2.5, 0.87},
    {wl::KernelKind::trmv, 2.0, 2.1, 0.72},
    {wl::KernelKind::spmv, 2.4, 2.5, 0.33},
    {wl::KernelKind::prank, 2.2, 2.3, 0.35},
    {wl::KernelKind::sssp, 2.1, 2.2, 0.39},
};

void emit() {
  bench::figure_header("Fig. 3a", "speedups and R-bus utilizations");
  util::Table table({"workload", "base cyc", "pack cyc", "ideal cyc",
                     "pack speedup", "ideal speedup", "pack R util",
                     "R util w/o idx", "pack/ideal", "paper speedup",
                     "paper R util", "ok"});
  double frac_sum = 0.0;
  for (const PaperRef& ref : kPaper) {
    const auto base = sys::run_default(ref.kernel, sys::SystemKind::base);
    const auto pack = sys::run_default(ref.kernel, sys::SystemKind::pack);
    const auto ideal = sys::run_default(ref.kernel, sys::SystemKind::ideal);
    const double pack_speedup =
        static_cast<double>(base.cycles) / pack.cycles;
    const double ideal_speedup =
        static_cast<double>(base.cycles) / ideal.cycles;
    frac_sum += static_cast<double>(ideal.cycles) / pack.cycles;
    table.row()
        .cell(wl::kernel_name(ref.kernel))
        .cell(base.cycles)
        .cell(pack.cycles)
        .cell(ideal.cycles)
        .cell(pack_speedup, 2)
        .cell(ideal_speedup, 2)
        .cell(util::fmt_pct(pack.r_util))
        .cell(util::fmt_pct(pack.r_util_no_idx))
        .cell(util::fmt_pct(static_cast<double>(ideal.cycles) / pack.cycles))
        .cell(ref.pack_speedup, 1)
        .cell(util::fmt_pct(ref.pack_r_util))
        .cell(base.correct && pack.correct && ideal.correct ? "yes" : "NO");
  }
  table.print(std::cout);
  std::printf("\nPACK reaches %.1f%% of IDEAL on average "
              "(paper: 97%%)\n\n",
              frac_sum / 6.0 * 100.0);
}

void bm_fig3a_pack_spmv(benchmark::State& state) {
  for (auto _ : state) {
    const auto r = sys::run_default(wl::KernelKind::spmv,
                                    sys::SystemKind::pack);
    state.counters["sim_cycles"] = static_cast<double>(r.cycles);
  }
}
BENCHMARK(bm_fig3a_pack_spmv)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
