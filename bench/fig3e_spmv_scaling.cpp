// Fig. 3e: spmv PACK speedup over BASE versus average nonzeros per row
// (2..390) and bus width.
//
// Paper reference: speedups converge to 1.4x / 1.8x / 2.4x for 64/128/256
// bit; the nonzeros per row set stream length per row iteration, so the
// scaling mirrors Fig. 3d.
#include "bench_common.hpp"
#include "systems/runner.hpp"

namespace {

using namespace axipack;

double speedup_at(unsigned bus_bits, std::uint32_t nnz) {
  auto mk = [&](sys::SystemKind kind) {
    auto cfg = sys::default_workload(wl::KernelKind::spmv, kind);
    cfg.nnz_per_row = nnz;
    // Keep total work bounded across the sweep.
    cfg.n = nnz >= 128 ? 256u : 512u;
    return sys::run_workload(sys::scenario_name(kind, bus_bits), cfg);
  };
  const auto base = mk(sys::SystemKind::base);
  const auto pack = mk(sys::SystemKind::pack);
  return static_cast<double>(base.cycles) / static_cast<double>(pack.cycles);
}

void emit() {
  bench::figure_header("Fig. 3e", "spmv PACK speedup scaling");
  const std::uint32_t nnzs[] = {2, 8, 24, 64, 128, 256, 390};
  util::Table table({"nnz/row", "64b bus", "128b bus", "256b bus"});
  double last[3] = {0, 0, 0};
  for (const auto nnz : nnzs) {
    table.row().cell(std::uint64_t{nnz});
    int i = 0;
    for (const unsigned bus : {64u, 128u, 256u}) {
      last[i] = speedup_at(bus, nnz);
      table.cell(last[i], 2);
      ++i;
    }
  }
  table.print(std::cout);
  std::printf("\npaper: converged speedups ~1.4x / 1.8x / 2.4x  —  "
              "measured at nnz=390: %.1fx / %.1fx / %.1fx\n\n",
              last[0], last[1], last[2]);
}

void bm_spmv_390(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(speedup_at(256, 390));
  }
}
BENCHMARK(bm_spmv_390)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
