// Fig. 3e: spmv PACK speedup over BASE versus average nonzeros per row
// (2..390) and bus width.
//
// Paper reference: speedups converge to 1.4x / 1.8x / 2.4x for 64/128/256
// bit; the nonzeros per row set stream length per row iteration, so the
// scaling mirrors Fig. 3d.
#include "bench_common.hpp"

namespace {

using namespace axipack;

sys::AxisValue nnz_value(std::uint32_t nnz) {
  return sys::AxisValue::config(std::to_string(nnz),
                                [nnz](wl::WorkloadConfig& c) {
                                  c.nnz_per_row = nnz;
                                  // Keep total work bounded across the sweep.
                                  c.n = nnz >= 128 ? 256u : 512u;
                                });
}

void emit(bench::BenchContext& ctx) {
  bench::figure_header("Fig. 3e", "spmv PACK speedup scaling");
  const auto& results = ctx.run(
      sys::ExperimentSpec("fig3e")
          .kernels_axis({wl::KernelKind::spmv})
          .axis("nnz/row", {nnz_value(2), nnz_value(8), nnz_value(24),
                            nnz_value(64), nnz_value(128), nnz_value(256),
                            nnz_value(390)})
          .axis("bus", {sys::AxisValue::bus_bits(64),
                        sys::AxisValue::bus_bits(128),
                        sys::AxisValue::bus_bits(256)})
          .systems_axis({sys::SystemKind::base, sys::SystemKind::pack})
          .baseline("system", "base"));

  double converged[3] = {0, 0, 0};
  const char* buses[] = {"64", "128", "256"};
  for (int i = 0; i < 3; ++i) {
    const auto* row = results.find(
        {{"nnz/row", "390"}, {"bus", buses[i]}, {"system", "pack"}});
    if (row != nullptr && row->speedup) converged[i] = *row->speedup;
  }
  std::printf("\npaper: converged speedups ~1.4x / 1.8x / 2.4x  —  "
              "measured at nnz=390: %.1fx / %.1fx / %.1fx\n\n",
              converged[0], converged[1], converged[2]);
}

void bm_spmv_390(benchmark::State& state) {
  for (auto _ : state) {
    const auto r = sys::run_default(wl::KernelKind::spmv,
                                    sys::SystemKind::pack);
    state.counters["sim_cycles"] = static_cast<double>(r.cycles);
  }
}
BENCHMARK(bm_spmv_390)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
