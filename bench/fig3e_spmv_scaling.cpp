// Fig. 3e: spmv PACK speedup over BASE versus average nonzeros per row
// (2..390) and bus width.
//
// Paper reference: speedups converge to 1.4x / 1.8x / 2.4x for 64/128/256
// bit; the nonzeros per row set stream length per row iteration, so the
// scaling mirrors Fig. 3d.
#include "bench_common.hpp"
#include "systems/runner.hpp"

namespace {

using namespace axipack;

sys::WorkloadJob spmv_job(sys::SystemKind kind, unsigned bus_bits,
                          std::uint32_t nnz) {
  auto cfg = sys::default_workload(wl::KernelKind::spmv, kind);
  cfg.nnz_per_row = nnz;
  // Keep total work bounded across the sweep.
  cfg.n = nnz >= 128 ? 256u : 512u;
  return {sys::scenario_name(kind, bus_bits), cfg};
}

double speedup_at(unsigned bus_bits, std::uint32_t nnz) {
  const auto r = sys::run_workloads(
      {spmv_job(sys::SystemKind::base, bus_bits, nnz),
       spmv_job(sys::SystemKind::pack, bus_bits, nnz)});
  return static_cast<double>(r[0].cycles) / static_cast<double>(r[1].cycles);
}

void emit() {
  bench::figure_header("Fig. 3e", "spmv PACK speedup scaling");
  const std::uint32_t nnzs[] = {2, 8, 24, 64, 128, 256, 390};
  util::Table table({"nnz/row", "64b bus", "128b bus", "256b bus"});
  const unsigned buses[] = {64u, 128u, 256u};
  // Whole surface (7 densities x 3 buses x base/pack) as one sweep.
  std::vector<sys::WorkloadJob> jobs;
  for (const auto nnz : nnzs) {
    for (const unsigned bus : buses) {
      jobs.push_back(spmv_job(sys::SystemKind::base, bus, nnz));
      jobs.push_back(spmv_job(sys::SystemKind::pack, bus, nnz));
    }
  }
  const auto results = sys::run_workloads(jobs);
  double last[3] = {0, 0, 0};
  std::size_t j = 0;
  for (const auto nnz : nnzs) {
    table.row().cell(std::uint64_t{nnz});
    for (int i = 0; i < 3; ++i) {
      const auto& base = results[j++];
      const auto& pack = results[j++];
      last[i] = static_cast<double>(base.cycles) /
                static_cast<double>(pack.cycles);
      table.cell(last[i], 2);
    }
  }
  table.print(std::cout);
  std::printf("\npaper: converged speedups ~1.4x / 1.8x / 2.4x  —  "
              "measured at nnz=390: %.1fx / %.1fx / %.1fx\n\n",
              last[0], last[1], last[2]);
}

void bm_spmv_390(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(speedup_at(256, 390));
  }
}
BENCHMARK(bm_spmv_390)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
