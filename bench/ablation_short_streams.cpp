// Ablation: AXI-Pack on very short streams.
//
// Paper §III-B: "thanks to our request-bundling approach, using AXI-Pack
// never results in a slowdown no matter how short streams become." This
// bench sweeps the vector length of a strided load kernel from 2 to 256
// elements on the BASE and PACK systems and reports the speedup — it must
// stay >= 1.0 at every point, approaching 1.0 only where the per-iteration
// scalar overhead dominates both systems equally.
#include "bench_common.hpp"
#include "systems/runner.hpp"

namespace {

using namespace axipack;

void emit() {
  bench::figure_header("Ablation", "short streams (pack is never slower)");
  util::Table table({"stream elems", "base cycles", "pack cycles", "speedup",
                     "pack>=base?"});
  bool all_ok = true;
  for (const std::uint32_t n : {2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    // ismt streams have length ~n; use it as the short-stream proxy with
    // everything else (overheads, memory) held constant.
    auto base_cfg = sys::default_workload(wl::KernelKind::ismt,
                                          sys::SystemKind::base);
    base_cfg.n = n;
    auto pack_cfg = sys::default_workload(wl::KernelKind::ismt,
                                          sys::SystemKind::pack);
    pack_cfg.n = n;
    const auto base = sys::run_workload(
        sys::scenario_name(sys::SystemKind::base), base_cfg);
    const auto pack = sys::run_workload(
        sys::scenario_name(sys::SystemKind::pack), pack_cfg);
    const bool ok = pack.cycles <= base.cycles && base.correct &&
                    pack.correct;
    all_ok &= ok;
    table.row()
        .cell(std::to_string(n))
        .cell(base.cycles)
        .cell(pack.cycles)
        .cell(static_cast<double>(base.cycles) / pack.cycles, 2)
        .cell(ok ? "yes" : "NO");
  }
  table.print(std::cout);
  std::printf("\npaper claim %s: request bundling folds the whole stream "
              "into one burst, so\nshort streams cost one request either "
              "way while PACK still packs the data beats.\n\n",
              all_ok ? "holds" : "VIOLATED");
}

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
