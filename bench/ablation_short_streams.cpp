// Ablation: AXI-Pack on very short streams.
//
// Paper §III-B: "thanks to our request-bundling approach, using AXI-Pack
// never results in a slowdown no matter how short streams become." This
// bench sweeps the vector length of a strided load kernel from 2 to 256
// elements on the BASE and PACK systems and reports the speedup — it must
// stay >= 1.0 at every point, approaching 1.0 only where the per-iteration
// scalar overhead dominates both systems equally.
#include "bench_common.hpp"

namespace {

using namespace axipack;

sys::AxisValue stream_value(std::uint32_t n) {
  return sys::AxisValue::config(std::to_string(n),
                                [n](wl::WorkloadConfig& c) { c.n = n; });
}

void emit(bench::BenchContext& ctx) {
  bench::figure_header("Ablation", "short streams (pack is never slower)");
  // ismt streams have length ~n; use it as the short-stream proxy with
  // everything else (overheads, memory) held constant.
  const auto& results = ctx.run(
      sys::ExperimentSpec("ablation-short-streams")
          .kernels_axis({wl::KernelKind::ismt})
          .axis("stream elems",
                {stream_value(2), stream_value(4), stream_value(8),
                 stream_value(16), stream_value(32), stream_value(64),
                 stream_value(128), stream_value(256)})
          .systems_axis({sys::SystemKind::base, sys::SystemKind::pack})
          .baseline("system", "base"));
  bool all_ok = results.all_correct();
  for (const sys::ResultRow& row : results.rows()) {
    if (row.coord("system") == "pack" && row.speedup) {
      all_ok = all_ok && *row.speedup >= 1.0;
    }
  }
  std::printf("\npaper claim %s: request bundling folds the whole stream "
              "into one burst, so\nshort streams cost one request either "
              "way while PACK still packs the data beats.\n\n",
              all_ok ? "holds" : "VIOLATED");
}

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
