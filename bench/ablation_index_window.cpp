// Ablation: index prefetch window of the indirect converters.
//
// The indirect read converter (paper Fig. 2d) buffers a window of fetched
// indices between its index stage and element stage. The window size is the
// indirect path's central head-of-line knob: it bounds how far index
// fetching may run ahead of element fetching, so a window that is too small
// starves the element stage on bank-conflict bubbles, while a large window
// costs area (one register per pending index). This sweep measures indirect
// read utilization versus window size (in bus lines) across index sizes and
// bank counts; our adapter defaults to 4 lines in system runs and 8 in the
// sensitivity harness.
#include "bench_common.hpp"
#include "systems/sensitivity.hpp"

namespace {

using namespace axipack;

sys::AxisValue memory_value(unsigned banks) {
  return sys::AxisValue::shaped(
      banks == 0 ? "ideal" : std::to_string(banks) + "b",
      [banks](sys::PointDraft& d) { d.params["banks"] = banks; });
}

void emit(bench::BenchContext& ctx) {
  bench::figure_header("Ablation",
                       "indirect index-window size (bus lines of indices)");
  ctx.run(
      sys::ExperimentSpec("ablation-index-window")
          .param_axis("window", "window_lines", {1, 2, 4, 8, 16, 32})
          .param_axis("index_bits", "index_bits", {32, 8})
          .axis("memory", {memory_value(17), memory_value(0)})
          .runner([](const sys::GridPoint& p) {
            sys::SensitivityConfig cfg;
            cfg.indirect = true;
            cfg.index_bits = static_cast<unsigned>(p.param("index_bits"));
            cfg.idx_window_lines =
                static_cast<unsigned>(p.param("window_lines"));
            cfg.banks = static_cast<unsigned>(p.param("banks"));
            if (p.quick) cfg.num_bursts = 2;
            sys::PointResult out;
            out.metrics["r_util"] =
                sys::measure_read_utilization(cfg).r_util;
            return out;
          }));
  std::printf("\ndesign takeaway: the window needs to cover the per-lane "
              "run-ahead the decoupling\nqueues allow; small indices pack "
              "more entries per line, so 8-bit indices saturate\nwith fewer "
              "lines while 32-bit indices want a deeper window on conflict-"
              "prone banks.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
