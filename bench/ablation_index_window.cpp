// Ablation: index prefetch window of the indirect converters.
//
// The indirect read converter (paper Fig. 2d) buffers a window of fetched
// indices between its index stage and element stage. The window size is the
// indirect path's central head-of-line knob: it bounds how far index
// fetching may run ahead of element fetching, so a window that is too small
// starves the element stage on bank-conflict bubbles, while a large window
// costs area (one register per pending index). This sweep measures indirect
// read utilization versus window size (in bus lines) across index sizes and
// bank counts; our adapter defaults to 4 lines in system runs and 8 in the
// sensitivity harness.
#include "bench_common.hpp"
#include "systems/sensitivity.hpp"

namespace {

using namespace axipack;

void emit() {
  bench::figure_header("Ablation",
                       "indirect index-window size (bus lines of indices)");
  util::Table table({"window", "32/32 17b", "32/8 17b", "32/32 ideal",
                     "32/8 ideal"});
  for (const unsigned lines : {1u, 2u, 4u, 8u, 16u, 32u}) {
    table.row().cell(std::to_string(lines));
    for (const unsigned idx_bits : {32u, 8u}) {
      sys::SensitivityConfig cfg;
      cfg.indirect = true;
      cfg.index_bits = idx_bits;
      cfg.idx_window_lines = lines;
      cfg.banks = 17;
      table.cell(util::fmt_pct(sys::measure_read_utilization(cfg).r_util));
    }
    for (const unsigned idx_bits : {32u, 8u}) {
      sys::SensitivityConfig cfg;
      cfg.indirect = true;
      cfg.index_bits = idx_bits;
      cfg.idx_window_lines = lines;
      cfg.banks = 0;  // conflict-free ideal memory
      table.cell(util::fmt_pct(sys::measure_read_utilization(cfg).r_util));
    }
  }
  table.print(std::cout);
  std::printf("\ndesign takeaway: the window needs to cover the per-lane "
              "run-ahead the decoupling\nqueues allow; small indices pack "
              "more entries per line, so 8-bit indices saturate\nwith fewer "
              "lines while 32-bit indices want a deeper window on conflict-"
              "prone banks.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
