// Fig. 4c: per-benchmark average power (BASE vs PACK) and energy-efficiency
// improvement.
//
// Paper reference: BASE powers in the 100-300 mW band; PACK power rises at
// most 31% (trmv); energy efficiency improves up to 5.3x (ismt) on strided
// and 2.1x (sssp) on indirect workloads.
#include "bench_common.hpp"
#include "energy/power_model.hpp"
#include "systems/runner.hpp"

namespace {

using namespace axipack;

void emit() {
  bench::figure_header("Fig. 4c", "benchmark power and energy efficiency");
  util::Table table({"workload", "base mW", "pack mW", "power delta",
                     "energy eff. gain", "paper gain"});
  const struct {
    wl::KernelKind kernel;
    double paper_gain;
  } refs[] = {
      {wl::KernelKind::ismt, 5.3}, {wl::KernelKind::gemv, 2.3},
      {wl::KernelKind::trmv, 1.9}, {wl::KernelKind::spmv, 2.0},
      {wl::KernelKind::prank, 1.9}, {wl::KernelKind::sssp, 2.1},
  };
  double max_delta = 0.0;
  for (const auto& ref : refs) {
    const auto base_cfg = sys::scenario_name(sys::SystemKind::base);
    const auto pack_cfg = sys::scenario_name(sys::SystemKind::pack);
    const auto base = sys::run_workload(
        base_cfg, sys::default_workload(ref.kernel, sys::SystemKind::base));
    const auto pack = sys::run_workload(
        pack_cfg, sys::default_workload(ref.kernel, sys::SystemKind::pack));
    const auto base_p = energy::estimate(base);
    const auto pack_p = energy::estimate(pack);
    const double delta = pack_p.power_mw / base_p.power_mw - 1.0;
    max_delta = std::max(max_delta, delta);
    table.row()
        .cell(wl::kernel_name(ref.kernel))
        .cell(base_p.power_mw, 1)
        .cell(pack_p.power_mw, 1)
        .cell(util::fmt_pct(delta))
        .cell(energy::efficiency_gain(base_p, base.cycles, pack_p,
                                      pack.cycles),
              2)
        .cell(ref.paper_gain, 1);
  }
  table.print(std::cout);
  std::printf("\nmax PACK power increase: %.0f%% (paper: at most 31%%, "
              "trmv)\n\n",
              max_delta * 100.0);
}

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
