// Fig. 4c: per-benchmark average power (BASE vs PACK) and energy-efficiency
// improvement.
//
// Paper reference: BASE powers in the 100-300 mW band; PACK power rises at
// most 31% (trmv); energy efficiency improves up to 5.3x (ismt) on strided
// and 2.1x (sssp) on indirect workloads.
#include <algorithm>

#include "bench_common.hpp"
#include "energy/power_model.hpp"

namespace {

using namespace axipack;

struct PaperRef {
  wl::KernelKind kernel;
  double gain;
};

const PaperRef kPaper[] = {
    {wl::KernelKind::ismt, 5.3}, {wl::KernelKind::gemv, 2.3},
    {wl::KernelKind::trmv, 1.9}, {wl::KernelKind::spmv, 2.0},
    {wl::KernelKind::prank, 1.9}, {wl::KernelKind::sssp, 2.1},
};

void emit(bench::BenchContext& ctx) {
  bench::figure_header("Fig. 4c", "benchmark power and energy efficiency");
  auto spec =
      sys::ExperimentSpec("fig4c")
          .kernels_axis({wl::KernelKind::ismt, wl::KernelKind::gemv,
                         wl::KernelKind::trmv, wl::KernelKind::spmv,
                         wl::KernelKind::prank, wl::KernelKind::sssp})
          .systems_axis({sys::SystemKind::base, sys::SystemKind::pack})
          .baseline("system", "base");
  sys::ResultSet results = ctx.prepare(spec).run();

  // Enrich each row with the power model; PACK rows additionally get the
  // energy-efficiency gain over their BASE partner and the paper's value.
  double max_delta = 0.0;
  for (sys::ResultRow& row : results.mutable_rows()) {
    const auto power = energy::estimate(row.run);
    row.metrics["power_mw"] = power.power_mw;
    if (row.coord("system") != "pack") continue;
    const auto* base = results.find(
        {{"kernel", row.coord("kernel")}, {"system", "base"}});
    if (base == nullptr || base->run.cycles == 0) continue;
    const auto base_power = energy::estimate(base->run);
    const double delta = power.power_mw / base_power.power_mw - 1.0;
    max_delta = std::max(max_delta, delta);
    row.metrics["power_delta"] = delta;
    row.metrics["energy_eff_gain"] = energy::efficiency_gain(
        base_power, base->run.cycles, power, row.run.cycles);
    for (const PaperRef& ref : kPaper) {
      if (row.coord("kernel") == wl::kernel_name(ref.kernel)) {
        row.metrics["paper_gain"] = ref.gain;
      }
    }
  }
  ctx.report(std::move(results));
  std::printf("\nmax PACK power increase: %.0f%% (paper: at most 31%%, "
              "trmv)\n\n",
              max_delta * 100.0);
}

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
