// Fig. 3c: trmv row-wise vs column-wise dataflows on all three systems.
//
// Paper reference: as for gemv but with shorter (triangular) streams —
// BASE row-wise utilization drops to 23%, PACK column-wise reaches 72%.
#include "bench_common.hpp"

namespace {

using namespace axipack;

void emit(bench::BenchContext& ctx) {
  bench::figure_header("Fig. 3c", "trmv dataflows compared (n=256)");
  ctx.run(
      sys::ExperimentSpec("fig3c")
          .kernels_axis({wl::KernelKind::trmv})
          .axis("dataflow",
                {sys::AxisValue::dataflow(wl::Dataflow::rowwise),
                 sys::AxisValue::dataflow(wl::Dataflow::colwise)})
          .systems_axis({sys::SystemKind::base, sys::SystemKind::pack,
                         sys::SystemKind::ideal}));
  std::printf("\npaper: BASE row-wise R util ~23%%, PACK col-wise R util "
              "~72%%\n");
  std::printf("paper shape: same as gemv with lower utilizations from "
              "shorter triangular streams\n\n");
}

void bm_trmv_col_pack(benchmark::State& state) {
  for (auto _ : state) {
    auto cfg = sys::plan_workload(wl::KernelKind::trmv,
                                  sys::scenario_name(sys::SystemKind::pack));
    cfg.dataflow = wl::Dataflow::colwise;
    const auto r =
        sys::run_workload(sys::scenario_name(sys::SystemKind::pack), cfg);
    state.counters["sim_cycles"] = static_cast<double>(r.cycles);
  }
}
BENCHMARK(bm_trmv_col_pack)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
