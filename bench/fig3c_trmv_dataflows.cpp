// Fig. 3c: trmv row-wise vs column-wise dataflows on all three systems.
//
// Paper reference: as for gemv but with shorter (triangular) streams —
// BASE row-wise utilization drops to 23%, PACK column-wise reaches 72%.
#include "bench_common.hpp"
#include "systems/runner.hpp"

namespace {

using namespace axipack;

void emit() {
  bench::figure_header("Fig. 3c", "trmv dataflows compared (n=256)");
  util::Table table({"system", "dataflow", "cycles", "R util", "paper"});
  // All 6 points are independent systems: sweep them over the thread pool.
  std::vector<sys::WorkloadJob> jobs;
  for (const auto df : {wl::Dataflow::rowwise, wl::Dataflow::colwise}) {
    for (const auto kind : {sys::SystemKind::base, sys::SystemKind::pack,
                            sys::SystemKind::ideal}) {
      auto cfg = sys::default_workload(wl::KernelKind::trmv, kind);
      cfg.dataflow = df;
      jobs.push_back({sys::scenario_name(kind), cfg});
    }
  }
  const auto results = sys::run_workloads(jobs);
  std::size_t i = 0;
  for (const auto df : {wl::Dataflow::rowwise, wl::Dataflow::colwise}) {
    for (const auto kind : {sys::SystemKind::base, sys::SystemKind::pack,
                            sys::SystemKind::ideal}) {
      const auto& r = results[i++];
      std::string note;
      if (df == wl::Dataflow::rowwise && kind == sys::SystemKind::base) {
        note = "R util ~23%";
      } else if (df == wl::Dataflow::colwise &&
                 kind == sys::SystemKind::pack) {
        note = "R util ~72%";
      }
      table.row()
          .cell(sys::system_name(kind))
          .cell(df == wl::Dataflow::rowwise ? "row-wise" : "col-wise")
          .cell(r.cycles)
          .cell(util::fmt_pct(r.r_util))
          .cell(note);
    }
  }
  table.print(std::cout);
  std::printf("\npaper shape: same as gemv with lower utilizations from "
              "shorter triangular streams\n\n");
}

void bm_trmv_col_pack(benchmark::State& state) {
  for (auto _ : state) {
    auto cfg = sys::default_workload(wl::KernelKind::trmv,
                                     sys::SystemKind::pack);
    cfg.dataflow = wl::Dataflow::colwise;
    const auto r =
        sys::run_workload(sys::scenario_name(sys::SystemKind::pack), cfg);
    state.counters["sim_cycles"] = static_cast<double>(r.cycles);
  }
}
BENCHMARK(bm_trmv_col_pack)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
