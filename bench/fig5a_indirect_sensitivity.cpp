// Fig. 5a: indirect-read bus utilization versus element/index size pairs
// and bank count, with an ideal requestor issuing length-256 read bursts of
// random indices (decoupling queues deepened to 32).
//
// Paper reference: utilization rises monotonically with bank count; across
// sizes it is bounded by r/(r+1) where r = elem_size/index_size (50% / 67%
// / 80% ideal for 32-bit elements with 32/16/8-bit indices); prime bank
// counts bring no inherent advantage for random accesses.
#include "bench_common.hpp"
#include "systems/sensitivity.hpp"
#include "util/bits.hpp"

namespace {

using namespace axipack;

void emit() {
  bench::figure_header("Fig. 5a", "indirect read utilization sensitivity");
  // The paper's size pairs, ordered by the ratio r = es/is.
  const struct {
    unsigned es, is;
  } pairs[] = {{32, 32},  {32, 16}, {64, 32},  {32, 8},  {64, 16}, {128, 32},
               {64, 8},   {128, 16}, {256, 32}, {128, 8}, {256, 16}, {256, 8}};
  const unsigned banks[] = {8, 11, 16, 17, 31, 32, 0};  // 0 = ideal
  util::Table table({"elem/idx", "r/(r+1)", "8", "11", "16", "17", "31", "32",
                     "ideal"});
  // The whole (size pair, bank count) surface as one parallel sweep.
  std::vector<sys::SensitivityConfig> cfgs;
  for (const auto& pair : pairs) {
    for (const unsigned b : banks) {
      sys::SensitivityConfig cfg;
      cfg.indirect = true;
      cfg.elem_bits = pair.es;
      cfg.index_bits = pair.is;
      cfg.banks = b;
      cfg.num_bursts = 6;
      cfgs.push_back(cfg);
    }
  }
  const auto results = sys::measure_read_utilization_many(cfgs);
  std::size_t j = 0;
  for (const auto& pair : pairs) {
    const double r = static_cast<double>(pair.es) / pair.is;
    table.row()
        .cell(std::to_string(pair.es) + "/" + std::to_string(pair.is))
        .cell(util::fmt_pct(r / (r + 1.0)));
    for (std::size_t b = 0; b < std::size(banks); ++b) {
      table.cell(util::fmt_pct(results[j++].r_util));
    }
  }
  table.print(std::cout);
  std::printf("\npaper shape: monotone in bank count; bounded by r/(r+1); "
              "larger elements or\nsmaller indices push utilization beyond "
              "the workload results of Fig. 3a\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
