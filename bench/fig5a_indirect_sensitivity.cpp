// Fig. 5a: indirect-read bus utilization versus element/index size pairs
// and bank count, with an ideal requestor issuing length-256 read bursts of
// random indices (decoupling queues deepened to 32).
//
// Paper reference: utilization rises monotonically with bank count; across
// sizes it is bounded by r/(r+1) where r = elem_size/index_size (50% / 67%
// / 80% ideal for 32-bit elements with 32/16/8-bit indices); prime bank
// counts bring no inherent advantage for random accesses.
#include "bench_common.hpp"
#include "systems/sensitivity.hpp"

namespace {

using namespace axipack;

sys::AxisValue size_pair(unsigned es, unsigned is) {
  return sys::AxisValue::shaped(
      std::to_string(es) + "/" + std::to_string(is),
      [es, is](sys::PointDraft& d) {
        d.params["elem_bits"] = es;
        d.params["index_bits"] = is;
      });
}

sys::AxisValue banks_value(unsigned banks) {
  return sys::AxisValue::shaped(
      banks == 0 ? "ideal" : std::to_string(banks),
      [banks](sys::PointDraft& d) { d.params["banks"] = banks; });
}

/// Index coalescing unit on/off (entries 0 disables it in the harness).
sys::AxisValue coalesce_value(std::size_t entries) {
  return sys::AxisValue::shaped(
      entries == 0 ? "off" : "x" + std::to_string(entries),
      [entries](sys::PointDraft& d) {
        d.params["coalesce_entries"] = static_cast<double>(entries);
      });
}

void emit(bench::BenchContext& ctx) {
  bench::figure_header("Fig. 5a", "indirect read utilization sensitivity");
  // The paper's size pairs, ordered by the ratio r = es/is.
  ctx.run(
      sys::ExperimentSpec("fig5a")
          .axis("elem/idx",
                {size_pair(32, 32), size_pair(32, 16), size_pair(64, 32),
                 size_pair(32, 8), size_pair(64, 16), size_pair(128, 32),
                 size_pair(64, 8), size_pair(128, 16), size_pair(256, 32),
                 size_pair(128, 8), size_pair(256, 16), size_pair(256, 8)})
          .axis("banks", {banks_value(8), banks_value(11), banks_value(16),
                          banks_value(17), banks_value(31), banks_value(32),
                          banks_value(0)})
          .axis("coalesce", {coalesce_value(0), coalesce_value(32)})
          .runner([](const sys::GridPoint& p) {
            sys::SensitivityConfig cfg;
            cfg.indirect = true;
            cfg.elem_bits = static_cast<unsigned>(p.param("elem_bits"));
            cfg.index_bits = static_cast<unsigned>(p.param("index_bits"));
            cfg.banks = static_cast<unsigned>(p.param("banks"));
            cfg.coalesce_entries =
                static_cast<std::size_t>(p.param("coalesce_entries"));
            cfg.num_bursts = p.quick ? 2 : 6;
            sys::PointResult out;
            out.metrics["r_util"] =
                sys::measure_read_utilization(cfg).r_util;
            const double r = p.param("elem_bits") / p.param("index_bits");
            out.metrics["bound"] = r / (r + 1.0);
            return out;
          }));
  std::printf("\npaper shape: monotone in bank count; bounded by r/(r+1); "
              "larger elements or\nsmaller indices push utilization beyond "
              "the workload results of Fig. 3a\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
