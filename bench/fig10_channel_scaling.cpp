// Fig. 10 (extension): aggregate read-bandwidth scaling with interleaved
// memory channels. M raw masters stream disjoint contiguous regions
// through the channel-interleaved fabric; aggregate R utilization (every
// channel link's payload against ONE link's capacity) scales near-linearly
// with channel count until the master pool can no longer feed the links —
// the saturation knee this bench records per (masters, mapping) curve.
//
// Expected shape: with M masters, each able to sink one R beat per cycle,
// aggregate utilization tracks min(masters, channels) and the knee sits
// where channels catch up with the masters' sink rate; the DRAM mapping
// moves the curve only marginally (streams are row-friendly under all
// three mappings once split per channel).
#include <string>

#include "bench_common.hpp"
#include "mem/dram_timing.hpp"
#include "systems/channel_sweep.hpp"

namespace {

using namespace axipack;

sys::AxisValue mapping_value(mem::DramMapping m) {
  return sys::AxisValue::shaped(
      mem::dram_mapping_name(m), [m](sys::PointDraft& d) {
        d.params["mapping"] = static_cast<double>(m);
      });
}

void emit(bench::BenchContext& ctx) {
  bench::figure_header("Fig. 10", "multi-channel read-bandwidth scaling");
  sys::ExperimentSpec spec("fig10");
  spec.param_axis("channels", "channels", {1, 2, 4, 8})
      .param_axis("masters", "masters", {8, 16, 32})
      .axis("mapping", {mapping_value(mem::DramMapping::permuted),
                        mapping_value(mem::DramMapping::bank_interleaved),
                        mapping_value(mem::DramMapping::row_interleaved)})
      .runner([](const sys::GridPoint& p) {
        sys::ChannelScalingConfig cfg;
        cfg.channels = static_cast<unsigned>(p.param("channels"));
        cfg.masters = static_cast<unsigned>(p.param("masters"));
        cfg.mapping = static_cast<mem::DramMapping>(
            static_cast<int>(p.param("mapping")));
        // Quick streams still span every channel (8 granules per master).
        cfg.bytes_per_master = p.quick ? 32 * 1024 : 256 * 1024;
        const sys::ChannelScalingResult r =
            sys::measure_channel_scaling(cfg);
        sys::PointResult out;
        out.metrics["agg_r_util"] = r.agg_r_util;
        out.metrics["cycles"] = static_cast<double>(r.cycles);
        double min_ch = 0.0, max_ch = 0.0;
        std::uint64_t hits = 0, misses = 0;
        for (std::size_t c = 0; c < r.per_channel_r_util.size(); ++c) {
          const double u = r.per_channel_r_util[c];
          if (c == 0 || u < min_ch) min_ch = u;
          if (c == 0 || u > max_ch) max_ch = u;
          hits += r.per_channel_row_hits[c];
          misses += r.per_channel_row_misses[c];
        }
        out.metrics["min_ch_r_util"] = min_ch;
        out.metrics["max_ch_r_util"] = max_ch;
        out.metrics["row_hit_ratio"] =
            hits + misses == 0
                ? 0.0
                : static_cast<double>(hits) / static_cast<double>(hits + misses);
        return out;
      });
  sys::ResultSet set = ctx.prepare(spec).run();

  // Derived metrics joined across the channel axis: scaling vs the
  // 1-channel partner, and the saturation knee of each (masters, mapping)
  // curve — the largest channel count whose doubling step still gained
  // >= 30% aggregate utilization (stamped on every row of the curve).
  auto& rows = set.mutable_rows();
  const auto find_util = [&](const sys::ResultRow& like,
                             const std::string& channels) -> double {
    for (const auto& r : rows) {
      if (r.coord("channels") == channels &&
          r.coord("masters") == like.coord("masters") &&
          r.coord("mapping") == like.coord("mapping")) {
        return r.metrics.at("agg_r_util");
      }
    }
    return 0.0;
  };
  for (auto& row : rows) {
    const double base = find_util(row, "1");
    if (base > 0.0) {
      row.metrics["scaling_vs_1ch"] = row.metrics.at("agg_r_util") / base;
    }
  }
  for (auto& row : rows) {
    double knee = 1.0;
    for (const unsigned c : {2u, 4u, 8u}) {
      const double prev = find_util(row, std::to_string(c / 2));
      const double cur = find_util(row, std::to_string(c));
      if (prev > 0.0 && cur >= 1.3 * prev) knee = c;
    }
    row.metrics["knee_channels"] = knee;
  }
  ctx.report(std::move(set));

  std::printf("\nexpected shape: aggregate R-util tracks min(masters, "
              "channels); the knee is\nwhere extra channels stop paying "
              "because the master pool is the bottleneck\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
