// Ablation: ahead-of-time layout transform (DMA) versus on-the-fly packing.
//
// Related Work positions AXI-Pack against data-layout-transform (DLT)
// accelerators like PLANAR: those gain bus efficiency by rearranging data
// in memory ahead of use, at the cost of extra memory traffic and an extra
// pass. With AXI-Pack both strategies are available from the same
// protocol:
//
//   on-the-fly      — the consumer streams strided data directly via pack
//                     bursts (one pass, no staging buffer);
//   ahead-of-time   — an AXI-Pack DMA first gathers the data to a
//                     contiguous buffer, then the consumer streams it with
//                     plain bursts (two passes; pays off only under reuse).
//
// The bench sweeps the reuse count: on-the-fly pays the strided cost every
// pass, ahead-of-time pays gather + cheap contiguous passes. The crossover
// quantifies when a DLT pass is worth it — with AXI-Pack's packed strided
// bursts the answer is "almost never" for bank-friendly strides, which is
// the paper's argument for protocol-level packing.
//
// Each (stride, operation) cost is one grid point: an independent
// single-DMA fabric running one descriptor, verified against the expected
// sink image.
#include <memory>

#include "bench_common.hpp"
#include "dma/descriptor.hpp"
#include "dma/engine.hpp"
#include "systems/scenario.hpp"
#include "systems/system.hpp"

namespace {

using namespace axipack;

enum class DltOp { contig, strided_pack, gather_pack, gather_narrow };

sys::AxisValue op_value(const char* label, DltOp op) {
  return sys::AxisValue::shaped(label, [op](sys::PointDraft& d) {
    d.params["op"] = static_cast<double>(static_cast<int>(op));
  });
}

/// Runs one DMA pass on a fresh single-DMA fabric and verifies the
/// destination holds the 0..n-1 element sequence.
sys::PointResult run_dlt_point(const sys::GridPoint& p) {
  const auto op = static_cast<DltOp>(static_cast<int>(p.param("op")));
  const auto stride = static_cast<std::int64_t>(p.param("stride"));
  const std::uint64_t elems = p.quick ? 256 : 1024;

  const bool use_pack = op != DltOp::gather_narrow;
  std::unique_ptr<sys::System> system =
      sys::ScenarioRegistry::instance().build(
          use_pack ? "single-dma-pack" : "single-dma-narrow");
  mem::BackingStore& store = system->store();
  dma::DmaEngine& engine = system->dma(0);

  const std::uint64_t src =
      store.alloc(elems * static_cast<std::uint64_t>(stride) + 64, 64);
  const std::uint64_t dst = store.alloc(elems * 4, 64);
  dma::Descriptor d;
  if (op == DltOp::contig) {
    // The post-DLT pass: stream the already-contiguous staging buffer.
    for (std::uint64_t i = 0; i < elems; ++i) {
      store.write_u32(src + i * 4, std::uint32_t(i));
    }
    d.src = dma::Pattern::contiguous(src);
  } else {
    for (std::uint64_t i = 0; i < elems; ++i) {
      store.write_u32(src + i * static_cast<std::uint64_t>(stride),
                      std::uint32_t(i));
    }
    d.src = dma::Pattern::strided(src, stride);
  }
  d.dst = dma::Pattern::contiguous(dst);
  d.elem_bytes = 4;
  d.num_elems = elems;

  const std::uint64_t start = system->kernel().now();
  engine.push(d);
  const bool drained = bool(system->run_until_drained(50'000'000));
  sys::PointResult out;
  out.run.bus_bits = 256;
  out.run.cycles = system->kernel().now() - start;
  out.run.correct = drained;
  for (std::uint64_t i = 0; drained && i < elems; ++i) {
    if (store.read_u32(dst + i * 4) != std::uint32_t(i)) {
      out.run.correct = false;
      out.run.error = "sink mismatch";
    }
  }
  return out;
}

void emit(bench::BenchContext& ctx) {
  bench::figure_header("Ablation",
                       "DLT (ahead-of-time DMA) vs on-the-fly packing");
  // Stride 40 B (10 words) is coprime with the 17 banks — the common case.
  // Stride 68 B (17 words) puts every element in the same bank — the
  // pathology where even packed bursts serialize at one word per cycle.
  const auto& results = ctx.run(
      sys::ExperimentSpec("ablation-dma-dlt")
          .param_axis("stride", "stride", {40, 68})
          .axis("operation",
                {op_value("contiguous pass", DltOp::contig),
                 op_value("strided pass (pack burst)", DltOp::strided_pack),
                 op_value("DLT gather (pack DMA)", DltOp::gather_pack),
                 op_value("DLT gather (narrow DMA)", DltOp::gather_narrow)})
          .baseline("operation", "contiguous pass")
          .runner(run_dlt_point));

  for (const char* stride : {"40", "68"}) {
    const auto* contig =
        results.find({{"stride", stride}, {"operation", "contiguous pass"}});
    const auto* fly = results.find(
        {{"stride", stride}, {"operation", "strided pass (pack burst)"}});
    const auto* gather = results.find(
        {{"stride", stride}, {"operation", "DLT gather (pack DMA)"}});
    const auto* narrow = results.find(
        {{"stride", stride}, {"operation", "DLT gather (narrow DMA)"}});
    if (!contig || !fly || !gather || !narrow) continue;
    std::printf("\ntotal cost over R reuse passes (stride %s B%s):\n",
                stride,
                std::string(stride) == "68"
                    ? " — same-bank pathology on 17 banks"
                    : "");
    util::Table table({"reuses", "on-the-fly (pack)",
                       "DLT+contig (pack DMA)", "DLT+contig (narrow DMA)",
                       "best"});
    for (const unsigned reuses : {1u, 2u, 4u, 8u, 16u}) {
      const std::uint64_t fly_cost = fly->run.cycles * reuses;
      const std::uint64_t dlt_pack =
          gather->run.cycles + contig->run.cycles * reuses;
      const std::uint64_t dlt_narrow =
          narrow->run.cycles + contig->run.cycles * reuses;
      const char* best = fly_cost <= dlt_pack && fly_cost <= dlt_narrow
                             ? "on-the-fly"
                         : dlt_pack <= dlt_narrow ? "DLT (pack)"
                                                  : "DLT (narrow)";
      table.row()
          .cell(std::to_string(reuses))
          .cell(fly_cost)
          .cell(dlt_pack)
          .cell(dlt_narrow)
          .cell(best);
    }
    table.print(std::cout);
  }
  std::printf("\ndesign takeaway: with bank-friendly strides the packed "
              "on-the-fly stream is nearly\ncontiguous-fast and a DLT pass "
              "only pays off under reuse; in the same-bank pathology\nthe "
              "gather amortizes after two passes. Either way the AXI-Pack "
              "DMA performs the DLT\npass cheaper than a conventional "
              "narrow-burst engine.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
