// Ablation: ahead-of-time layout transform (DMA) versus on-the-fly packing.
//
// Related Work positions AXI-Pack against data-layout-transform (DLT)
// accelerators like PLANAR: those gain bus efficiency by rearranging data
// in memory ahead of use, at the cost of extra memory traffic and an extra
// pass. With AXI-Pack both strategies are available from the same
// protocol:
//
//   on-the-fly      — the consumer streams strided data directly via pack
//                     bursts (one pass, no staging buffer);
//   ahead-of-time   — an AXI-Pack DMA first gathers the data to a
//                     contiguous buffer, then the consumer streams it with
//                     plain bursts (two passes; pays off only under reuse).
//
// The bench sweeps the reuse count: on-the-fly pays the strided cost every
// pass, ahead-of-time pays gather + cheap contiguous passes. The crossover
// quantifies when a DLT pass is worth it — with AXI-Pack's packed strided
// bursts the answer is "almost never" for bank-friendly strides, which is
// the paper's argument for protocol-level packing.
#include <memory>

#include "bench_common.hpp"
#include "dma/descriptor.hpp"
#include "dma/engine.hpp"
#include "systems/scenario.hpp"
#include "systems/system.hpp"

namespace {

using namespace axipack;

/// DMA -> adapter -> 17-bank memory — the registry's
/// "single-dma-{pack,narrow}" scenarios.
struct Fabric {
  std::unique_ptr<sys::System> system;
  mem::BackingStore& store;
  dma::DmaEngine& engine;

  explicit Fabric(bool use_pack)
      : system(sys::ScenarioRegistry::instance().build(
            use_pack ? "single-dma-pack" : "single-dma-narrow")),
        store(system->store()),
        engine(system->dma(0)) {}

  std::uint64_t run_job(const dma::Descriptor& d) {
    const std::uint64_t start = system->kernel().now();
    engine.push(d);
    system->run_until_drained(50'000'000);
    return system->kernel().now() - start;
  }
};

constexpr std::uint64_t kElems = 1024;

/// Per-stride single-pass costs.
struct Costs {
  std::uint64_t contig = 0;   ///< contiguous pass
  std::uint64_t strided = 0;  ///< strided pass, pack burst
  std::uint64_t gather = 0;   ///< DLT gather, pack DMA
  std::uint64_t narrow = 0;   ///< DLT gather, narrow (per-element) DMA
};

Costs measure(std::int64_t stride) {
  Costs c;
  // Pack-mode fabric covers the contiguous pass, the on-the-fly strided
  // pass, and the pack-DMA gather.
  Fabric fab(true);
  const std::uint64_t src =
      fab.store.alloc(kElems * static_cast<std::uint64_t>(stride) + 64, 64);
  const std::uint64_t staging = fab.store.alloc(kElems * 4, 64);
  const std::uint64_t sink = fab.store.alloc(kElems * 4, 64);
  for (std::uint64_t i = 0; i < kElems; ++i) {
    fab.store.write_u32(src + i * static_cast<std::uint64_t>(stride),
                        std::uint32_t(i));
  }

  dma::Descriptor strided_pass;
  strided_pass.src = dma::Pattern::strided(src, stride);
  strided_pass.dst = dma::Pattern::contiguous(sink);
  strided_pass.elem_bytes = 4;
  strided_pass.num_elems = kElems;
  c.strided = fab.run_job(strided_pass);

  dma::Descriptor dlt = strided_pass;
  dlt.dst = dma::Pattern::contiguous(staging);
  c.gather = fab.run_job(dlt);

  dma::Descriptor contig_pass;
  contig_pass.src = dma::Pattern::contiguous(staging);
  contig_pass.dst = dma::Pattern::contiguous(sink);
  contig_pass.elem_bytes = 4;
  contig_pass.num_elems = kElems;
  c.contig = fab.run_job(contig_pass);

  // Separate fabric for the conventional narrow-burst gather engine.
  Fabric nf(false);
  const std::uint64_t nsrc =
      nf.store.alloc(kElems * static_cast<std::uint64_t>(stride) + 64, 64);
  const std::uint64_t ndst = nf.store.alloc(kElems * 4, 64);
  for (std::uint64_t i = 0; i < kElems; ++i) {
    nf.store.write_u32(nsrc + i * static_cast<std::uint64_t>(stride),
                       std::uint32_t(i));
  }
  dma::Descriptor narrow_gather;
  narrow_gather.src = dma::Pattern::strided(nsrc, stride);
  narrow_gather.dst = dma::Pattern::contiguous(ndst);
  narrow_gather.elem_bytes = 4;
  narrow_gather.num_elems = kElems;
  c.narrow = nf.run_job(narrow_gather);
  return c;
}

void emit() {
  bench::figure_header("Ablation",
                       "DLT (ahead-of-time DMA) vs on-the-fly packing");

  // Stride 40 B (10 words) is coprime with the 17 banks — the common case.
  // Stride 68 B (17 words) puts every element in the same bank — the
  // pathology where even packed bursts serialize at one word per cycle.
  for (const std::int64_t stride : {std::int64_t{40}, std::int64_t{68}}) {
    const Costs c = measure(stride);
    std::printf("single-pass costs (%llu elements, stride %lld B%s):\n",
                static_cast<unsigned long long>(kElems),
                static_cast<long long>(stride),
                stride == 68 ? " — same-bank pathology on 17 banks" : "");
    util::Table costs({"operation", "cycles", "vs contiguous"});
    costs.row().cell("contiguous pass").cell(c.contig).cell(1.0, 2);
    costs.row()
        .cell("strided pass (pack burst)")
        .cell(c.strided)
        .cell(static_cast<double>(c.strided) / c.contig, 2);
    costs.row()
        .cell("DLT gather (pack DMA)")
        .cell(c.gather)
        .cell(static_cast<double>(c.gather) / c.contig, 2);
    costs.row()
        .cell("DLT gather (narrow DMA)")
        .cell(c.narrow)
        .cell(static_cast<double>(c.narrow) / c.contig, 2);
    costs.print(std::cout);

    std::printf("\ntotal cost over R reuse passes:\n");
    util::Table table({"reuses", "on-the-fly (pack)",
                       "DLT+contig (pack DMA)", "DLT+contig (narrow DMA)",
                       "best"});
    for (const unsigned reuses : {1u, 2u, 4u, 8u, 16u}) {
      const std::uint64_t fly = c.strided * reuses;
      const std::uint64_t dlt_pack = c.gather + c.contig * reuses;
      const std::uint64_t dlt_narrow = c.narrow + c.contig * reuses;
      const char* best = fly <= dlt_pack && fly <= dlt_narrow
                             ? "on-the-fly"
                         : dlt_pack <= dlt_narrow ? "DLT (pack)"
                                                  : "DLT (narrow)";
      table.row()
          .cell(std::to_string(reuses))
          .cell(fly)
          .cell(dlt_pack)
          .cell(dlt_narrow)
          .cell(best);
    }
    table.print(std::cout);
    std::printf("\n");
  }
  std::printf("design takeaway: with bank-friendly strides the packed "
              "on-the-fly stream is nearly\ncontiguous-fast and a DLT pass "
              "only pays off under reuse; in the same-bank pathology\nthe "
              "gather amortizes after two passes. Either way the AXI-Pack "
              "DMA performs the DLT\npass cheaper than a conventional "
              "narrow-burst engine.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
