// Fig. 3d: ismt PACK speedup over BASE versus matrix dimension (8..256)
// and bus width (64/128/256 bit, i.e. 2/4/8 lanes).
//
// Paper reference: speedups converge with matrix size and reach up to
// 1.9x / 3.2x / 5.4x for 64/128/256-bit buses; short matrices are
// bottlenecked by row-iteration overhead; AXI-Pack never slows down.
#include "bench_common.hpp"

namespace {

using namespace axipack;

sys::AxisValue dim_value(std::uint32_t n) {
  return sys::AxisValue::config(std::to_string(n),
                                [n](wl::WorkloadConfig& c) { c.n = n; });
}

void emit(bench::BenchContext& ctx) {
  bench::figure_header("Fig. 3d", "ismt PACK speedup scaling");
  const auto& results = ctx.run(
      sys::ExperimentSpec("fig3d")
          .kernels_axis({wl::KernelKind::ismt})
          .axis("dim", {dim_value(8), dim_value(16), dim_value(32),
                        dim_value(64), dim_value(128), dim_value(192),
                        dim_value(256)})
          .axis("bus", {sys::AxisValue::bus_bits(64),
                        sys::AxisValue::bus_bits(128),
                        sys::AxisValue::bus_bits(256)})
          .systems_axis({sys::SystemKind::base, sys::SystemKind::pack})
          .baseline("system", "base"));

  double converged[3] = {0, 0, 0};
  const char* buses[] = {"64", "128", "256"};
  for (int i = 0; i < 3; ++i) {
    const auto* row = results.find(
        {{"dim", "256"}, {"bus", buses[i]}, {"system", "pack"}});
    if (row != nullptr && row->speedup) converged[i] = *row->speedup;
  }
  std::printf("\npaper: converged speedups ~1.9x / 3.2x / 5.4x  —  "
              "measured at n=256: %.1fx / %.1fx / %.1fx\n",
              converged[0], converged[1], converged[2]);
  std::printf("paper: AXI-Pack never causes a slowdown (speedup >= 1 even "
              "at n=8)\n\n");
}

void bm_ismt_256(benchmark::State& state) {
  for (auto _ : state) {
    auto cfg = sys::plan_workload(
        wl::KernelKind::ismt, sys::scenario_name(sys::SystemKind::pack, 256));
    cfg.n = 128;
    const auto r = sys::run_workload(
        sys::scenario_name(sys::SystemKind::pack, 256), cfg);
    state.counters["sim_cycles"] = static_cast<double>(r.cycles);
  }
}
BENCHMARK(bm_ismt_256)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
