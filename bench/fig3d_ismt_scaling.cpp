// Fig. 3d: ismt PACK speedup over BASE versus matrix dimension (8..256)
// and bus width (64/128/256 bit, i.e. 2/4/8 lanes).
//
// Paper reference: speedups converge with matrix size and reach up to
// 1.9x / 3.2x / 5.4x for 64/128/256-bit buses; short matrices are
// bottlenecked by row-iteration overhead; AXI-Pack never slows down.
#include "bench_common.hpp"
#include "systems/runner.hpp"

namespace {

using namespace axipack;

double speedup_at(unsigned bus_bits, std::uint32_t n) {
  auto base_cfg = sys::default_workload(wl::KernelKind::ismt,
                                        sys::SystemKind::base);
  base_cfg.n = n;
  auto pack_cfg = sys::default_workload(wl::KernelKind::ismt,
                                        sys::SystemKind::pack);
  pack_cfg.n = n;
  const auto base = sys::run_workload(
      sys::scenario_name(sys::SystemKind::base, bus_bits), base_cfg);
  const auto pack = sys::run_workload(
      sys::scenario_name(sys::SystemKind::pack, bus_bits), pack_cfg);
  return static_cast<double>(base.cycles) / static_cast<double>(pack.cycles);
}

void emit() {
  bench::figure_header("Fig. 3d", "ismt PACK speedup scaling");
  const std::uint32_t dims[] = {8, 16, 32, 64, 128, 192, 256};
  util::Table table({"matrix dim", "64b bus", "128b bus", "256b bus"});
  double last[3] = {0, 0, 0};
  for (const auto n : dims) {
    table.row().cell(std::uint64_t{n});
    int i = 0;
    for (const unsigned bus : {64u, 128u, 256u}) {
      last[i] = speedup_at(bus, n);
      table.cell(last[i], 2);
      ++i;
    }
  }
  table.print(std::cout);
  std::printf("\npaper: converged speedups ~1.9x / 3.2x / 5.4x  —  "
              "measured at n=256: %.1fx / %.1fx / %.1fx\n",
              last[0], last[1], last[2]);
  std::printf("paper: AXI-Pack never causes a slowdown (speedup >= 1 even "
              "at n=8)\n\n");
}

void bm_ismt_256(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(speedup_at(256, 128));
  }
}
BENCHMARK(bm_ismt_256)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
