// Fig. 3d: ismt PACK speedup over BASE versus matrix dimension (8..256)
// and bus width (64/128/256 bit, i.e. 2/4/8 lanes).
//
// Paper reference: speedups converge with matrix size and reach up to
// 1.9x / 3.2x / 5.4x for 64/128/256-bit buses; short matrices are
// bottlenecked by row-iteration overhead; AXI-Pack never slows down.
#include "bench_common.hpp"
#include "systems/runner.hpp"

namespace {

using namespace axipack;

sys::WorkloadJob ismt_job(sys::SystemKind kind, unsigned bus_bits,
                          std::uint32_t n) {
  auto cfg = sys::default_workload(wl::KernelKind::ismt, kind);
  cfg.n = n;
  return {sys::scenario_name(kind, bus_bits), cfg};
}

double speedup_at(unsigned bus_bits, std::uint32_t n) {
  const auto r = sys::run_workloads(
      {ismt_job(sys::SystemKind::base, bus_bits, n),
       ismt_job(sys::SystemKind::pack, bus_bits, n)});
  return static_cast<double>(r[0].cycles) / static_cast<double>(r[1].cycles);
}

void emit() {
  bench::figure_header("Fig. 3d", "ismt PACK speedup scaling");
  const std::uint32_t dims[] = {8, 16, 32, 64, 128, 192, 256};
  util::Table table({"matrix dim", "64b bus", "128b bus", "256b bus"});
  const unsigned buses[] = {64u, 128u, 256u};
  // Whole surface (7 dims x 3 buses x base/pack) as one sweep.
  std::vector<sys::WorkloadJob> jobs;
  for (const auto n : dims) {
    for (const unsigned bus : buses) {
      jobs.push_back(ismt_job(sys::SystemKind::base, bus, n));
      jobs.push_back(ismt_job(sys::SystemKind::pack, bus, n));
    }
  }
  const auto results = sys::run_workloads(jobs);
  double last[3] = {0, 0, 0};
  std::size_t j = 0;
  for (const auto n : dims) {
    table.row().cell(std::uint64_t{n});
    for (int i = 0; i < 3; ++i) {
      const auto& base = results[j++];
      const auto& pack = results[j++];
      last[i] = static_cast<double>(base.cycles) /
                static_cast<double>(pack.cycles);
      table.cell(last[i], 2);
    }
  }
  table.print(std::cout);
  std::printf("\npaper: converged speedups ~1.9x / 3.2x / 5.4x  —  "
              "measured at n=256: %.1fx / %.1fx / %.1fx\n",
              last[0], last[1], last[2]);
  std::printf("paper: AXI-Pack never causes a slowdown (speedup >= 1 even "
              "at n=8)\n\n");
}

void bm_ismt_256(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(speedup_at(256, 128));
  }
}
BENCHMARK(bm_ismt_256)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
