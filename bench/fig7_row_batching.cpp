// Fig. 7 (extension): row-aware request batching in the DRAM scheduler —
// sched-window x starvation-cap sensitivity over strided and indirect
// kernels.
//
// PR 3 exposed the DRAM finding: with head-only FR-FCFS scheduling, PACK's
// fine-grained index/gather interleaving ping-pongs every bank between two
// rows and loses to BASE on the "dram" backend. This sweep runs the three
// headline kernel shapes (ismt = strided read/write mix, gemv = strided
// column walk, spmv = indirect gather) on pack-dram across the batching
// scheduler's two knobs:
//
//   * sched_window — how many visible requests per port the scheduler may
//     inspect and (reads, plus hazard-free same-row writes) reorder;
//     window 1 is the PR-3 head-only scheduler;
//   * starve_cap   — the deferral budget a timing-legal row miss spends
//     before it beats pending same-row work.
//
// Measured shape: the window does the heavy lifting (row-hit ratio and
// utilization climb steeply from w1 to w32 on the interleaved kernels,
// with the base-dram reference overtaken well before the default), while
// the cap is a fairness bound with little throughput effect at sane
// values. All points are independent: one SweepRunner pass.
#include <vector>

#include "bench_common.hpp"
#include "systems/runner.hpp"
#include "systems/scenario.hpp"
#include "systems/sweep.hpp"

namespace {

using namespace axipack;

void emit() {
  bench::figure_header(
      "Fig. 7", "DRAM row-batching sensitivity (sched window x starve cap)");
  const std::size_t windows[] = {1, 4, 8, 16, 32};
  const sim::Cycle caps[] = {16, 48, 128};
  const wl::KernelKind kernels[] = {wl::KernelKind::ismt,
                                    wl::KernelKind::gemv,
                                    wl::KernelKind::spmv};

  // Job grid: per kernel one base-dram reference plus the window x cap
  // pack-dram points (window 1 ignores the cap — run it once).
  std::vector<sys::WorkloadJob> jobs;
  for (const auto kernel : kernels) {
    jobs.push_back({"base-dram",
                    sys::default_workload(kernel, sys::SystemKind::base)});
    for (const std::size_t w : windows) {
      for (const sim::Cycle c : caps) {
        if (w == 1 && c != caps[0]) continue;  // cap is moot at window 1
        jobs.push_back(
            {"pack-256-dram-w" + std::to_string(w) + "-c" +
                 std::to_string(c),
             sys::default_workload(kernel, sys::SystemKind::pack)});
      }
    }
  }
  const auto results = sys::run_workloads(jobs);

  std::size_t j = 0;
  bool all_correct = true;
  for (const auto kernel : kernels) {
    const sys::RunResult& base = results[j++];
    all_correct = all_correct && base.correct;
    std::printf("%s (base-dram reference: %llu cycles, hit %s, R-util %s):\n",
                wl::kernel_name(kernel),
                static_cast<unsigned long long>(base.cycles),
                util::fmt_pct(base.row_hit_ratio()).c_str(),
                util::fmt_pct(base.r_util).c_str());
    util::Table table({"window", "cap", "hit%", "R-util", "speedup vs base",
                       "batch defers", "starved grants"});
    for (const std::size_t w : windows) {
      for (const sim::Cycle c : caps) {
        if (w == 1 && c != caps[0]) continue;
        const sys::RunResult& r = results[j++];
        all_correct = all_correct && r.correct;
        table.row()
            .cell(std::to_string(w))
            .cell(w == 1 ? "-" : std::to_string(c))
            .cell(util::fmt_pct(r.row_hit_ratio()))
            .cell(util::fmt_pct(r.r_util))
            .cell(util::fmt(static_cast<double>(base.cycles) /
                                static_cast<double>(r.cycles),
                            2) +
                  "x")
            .cell(std::to_string(r.row_batch_defer_cycles))
            .cell(std::to_string(r.row_starved_grants));
      }
    }
    table.print(std::cout);
    std::printf("\n");
  }
  std::printf("shape: hit ratio and utilization climb with the window "
              "(w1 = PR-3 head-only scheduling); the starvation cap is a "
              "fairness bound, nearly throughput-neutral at sane values\n");
  std::printf("all workloads verified: %s\n\n", all_correct ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
