// Fig. 7 (extension): row-aware request batching in the DRAM scheduler —
// sched-window x starvation-cap sensitivity over strided and indirect
// kernels.
//
// PR 3 exposed the DRAM finding: with head-only FR-FCFS scheduling, PACK's
// fine-grained index/gather interleaving ping-pongs every bank between two
// rows and loses to BASE on the "dram" backend. This sweep runs the three
// headline kernel shapes (ismt = strided read/write mix, gemv = strided
// column walk on the pack side, spmv = indirect gather) on pack-dram
// across the batching scheduler's two knobs:
//
//   * sched_window — how many visible requests per port the scheduler may
//     inspect and (reads, plus hazard-free same-row writes) reorder;
//     window 1 is the PR-3 head-only scheduler;
//   * starve_cap   — the deferral budget a timing-legal row miss spends
//     before it beats pending same-row work.
//
// Note the pack points pin the column-wise dataflow: the backend-aware
// planner (plan_workload) picks row-wise gemv on "dram" precisely because
// column strides thrash rows — this figure measures how much of that
// thrash the scheduler can absorb, so it overrides the planner on the
// pack side while the base-dram reference keeps its planned row-wise
// streams (the toughest reference, as in the PR-4 recovery table).
//
// Measured shape: the window does the heavy lifting (row-hit ratio and
// utilization climb steeply from w1 to w32 on the interleaved kernels,
// with the base-dram reference overtaken well before the default), while
// the cap is a fairness bound with little throughput effect at sane
// values.
#include "bench_common.hpp"

namespace {

using namespace axipack;

void emit(bench::BenchContext& ctx) {
  bench::figure_header(
      "Fig. 7", "DRAM row-batching sensitivity (sched window x starve cap)");
  const std::size_t windows[] = {1, 4, 8, 16, 32};
  const sim::Cycle caps[] = {16, 48, 128};

  // One flattened scheduler axis: the base-dram reference (baseline) plus
  // every pack window x cap point (window 1 ignores the cap — one value).
  std::vector<sys::AxisValue> sched;
  sched.push_back(sys::AxisValue::scenario("base-dram"));
  for (const std::size_t w : windows) {
    for (const sim::Cycle c : caps) {
      if (w == 1 && c != caps[0]) continue;  // cap is moot at window 1
      sys::AxisValue v = sys::AxisValue::scenario(
          "pack-256-dram-w" + std::to_string(w) + "-c" + std::to_string(c));
      v.label = w == 1 ? "pack-w1"
                       : "pack-w" + std::to_string(w) + "-c" +
                             std::to_string(c);
      // Pin the column walk the scheduler has to absorb (gemv/trmv only;
      // ismt/spmv ignore the dataflow field).
      v.patch = [](wl::WorkloadConfig& c) {
        c.dataflow = wl::Dataflow::colwise;
      };
      sched.push_back(std::move(v));
    }
  }

  const auto& results = ctx.run(
      sys::ExperimentSpec("fig7")
          .kernels_axis({wl::KernelKind::ismt, wl::KernelKind::gemv,
                         wl::KernelKind::spmv})
          .axis("sched", std::move(sched))
          .baseline("sched", "base-dram"));
  std::printf("\nshape: hit ratio and utilization climb with the window "
              "(w1 = PR-3 head-only scheduling); the starvation cap is a "
              "fairness bound, nearly throughput-neutral at sane values\n");
  std::printf("all workloads verified: %s\n\n",
              results.all_correct() ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
