// Fig. 8 (extension): near-memory index coalescing on the pack indirect
// path — pending-table entries x grouping window over the three indirect
// kernels on the DRAM backend.
//
// The row-aware batching scheduler (fig7) recovers most of the indirect
// DRAM gap, but the gather stream it sees is still index-ordered: duplicate
// indices fetch the same word repeatedly and same-row accesses arrive
// interleaved with unrelated rows, capping pack-dram's row-hit ratio below
// the base-dram reference. The coalescer attacks both at the source — an
// MSHR-style pending table merges duplicate element words before they
// reach memory, and a bounded grouping window reorders index-derived
// requests so same-bank/same-row fetches leave the adapter adjacent (the
// index stage moves onto parallel lanes so neither stream stalls the
// other).
//
// Sweep: coalescer off (the plain pack-dram wiring, baseline join) against
// every entries x window point, spmv/prank/sssp. Measured shape: the
// indirect kernels' index reuse is across gather vectors, not within one,
// so merging only engages once the pending table retains a full vector's
// worth of element words (512 at the evaluation sizes) — below that the
// table cycles before the duplicates recur and merged stays near zero.
// The grouping window and the bank-partitioned sticky arbitration carry
// the row-hit ratio to/above the base-dram level; the defaults (x512-g16)
// sit just past both knees.
#include "bench_common.hpp"

namespace {

using namespace axipack;

void emit(bench::BenchContext& ctx) {
  bench::figure_header(
      "Fig. 8", "index coalescing sensitivity (pending entries x window)");
  const std::size_t entries[] = {16, 128, 512};
  const std::size_t windows[] = {1, 16, 64};

  // One flattened coalescer axis: the coalescer-off pack-dram wiring
  // (baseline) plus every entries x window point.
  std::vector<sys::AxisValue> points;
  auto off = sys::AxisValue::scenario("pack-dram");
  off.label = "off";
  points.push_back(std::move(off));
  for (const std::size_t e : entries) {
    for (const std::size_t w : windows) {
      sys::AxisValue v = sys::AxisValue::scenario(
          "pack-256-dram-x" + std::to_string(e) + "-g" + std::to_string(w));
      v.label = "x" + std::to_string(e) + "-g" + std::to_string(w);
      points.push_back(std::move(v));
    }
  }

  const auto& results = ctx.run(
      sys::ExperimentSpec("fig8")
          .kernels_axis({wl::KernelKind::spmv, wl::KernelKind::prank,
                         wl::KernelKind::sssp})
          .axis("coalesce", std::move(points))
          .baseline("coalesce", "off"));
  std::printf("\nshape: merging engages once the table retains a full "
              "gather vector (x512); window + sticky arbitration lift the "
              "row-hit ratio past the base-dram level at the defaults "
              "(x512-g16)\n");
  std::printf("all workloads verified: %s\n\n",
              results.all_correct() ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
