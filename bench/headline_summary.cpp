// Headline summary: the paper's abstract-level claims, paper vs measured.
//
//   * peak strided speedup 5.4x (ismt), bus utilization 87% (gemv)
//   * peak indirect speedup 2.4x (spmv), bus utilization 39% (sssp)
//   * PACK ~97% of IDEAL on average
//   * energy efficiency up to 5.3x strided / 2.1x indirect
//   * 256-bit adapter = 6.2% of Ara's area
//
// Plus the DRAM-endpoint table: every kernel on base-dram, on pack-dram
// with the head-only scheduler ("pack-w1", the PR-3 behaviour that lost to
// BASE), and on pack-dram with row-aware batching (the default). With the
// backend-aware planner, gemv/trmv run row-wise on pack-dram and no longer
// thrash rows (the former ~0.3x/~0.6x ROADMAP residual).
#include <algorithm>

#include "bench_common.hpp"
#include "energy/area_model.hpp"
#include "energy/power_model.hpp"

namespace {

using namespace axipack;

const wl::KernelKind kKernels[] = {wl::KernelKind::ismt, wl::KernelKind::gemv,
                                   wl::KernelKind::trmv, wl::KernelKind::spmv,
                                   wl::KernelKind::prank,
                                   wl::KernelKind::sssp};

void emit(bench::BenchContext& ctx) {
  bench::figure_header("Headline", "paper-vs-measured summary");
  const std::vector<wl::KernelKind> kernels(std::begin(kKernels),
                                            std::end(kKernels));

  // The 18 SRAM (kernel, system) points.
  std::printf("SRAM SoC grid:\n");
  const auto& sram = ctx.run(
      sys::ExperimentSpec("headline-sram")
          .kernels_axis(kernels)
          .systems_axis({sys::SystemKind::base, sys::SystemKind::pack,
                         sys::SystemKind::ideal})
          .baseline("system", "base"));

  double peak_strided_speedup = 0.0, peak_indirect_speedup = 0.0;
  double peak_strided_util = 0.0, peak_indirect_util = 0.0;
  double peak_strided_eff = 0.0, peak_indirect_eff = 0.0;
  double ratio_sum = 0.0;
  int ratio_count = 0;
  for (const auto kernel : kKernels) {
    const char* name = wl::kernel_name(kernel);
    const auto* base = sram.find({{"kernel", name}, {"system", "base"}});
    const auto* pack = sram.find({{"kernel", name}, {"system", "pack"}});
    const auto* ideal = sram.find({{"kernel", name}, {"system", "ideal"}});
    if (!base || !pack || !ideal || pack->run.cycles == 0) continue;
    const double speedup = pack->speedup.value_or(0.0);
    const double eff = energy::efficiency_gain(
        energy::estimate(base->run), base->run.cycles,
        energy::estimate(pack->run), pack->run.cycles);
    ratio_sum += static_cast<double>(ideal->run.cycles) / pack->run.cycles;
    ++ratio_count;
    if (wl::kernel_is_indirect(kernel)) {
      peak_indirect_speedup = std::max(peak_indirect_speedup, speedup);
      peak_indirect_util = std::max(peak_indirect_util, pack->run.r_util);
      peak_indirect_eff = std::max(peak_indirect_eff, eff);
    } else {
      peak_strided_speedup = std::max(peak_strided_speedup, speedup);
      peak_strided_util = std::max(peak_strided_util, pack->run.r_util);
      peak_strided_eff = std::max(peak_strided_eff, eff);
    }
  }
  const double adapter_ratio =
      *energy::adapter_area_kge(256, 1000) / energy::ara_area_kge(8);

  std::printf("\n");
  util::Table table({"claim", "paper", "measured"});
  table.row().cell("peak strided speedup").cell("5.4x").cell(
      util::fmt(peak_strided_speedup, 2) + "x");
  table.row().cell("peak strided R-bus utilization").cell("87%").cell(
      util::fmt_pct(peak_strided_util));
  table.row().cell("peak indirect speedup").cell("2.4x").cell(
      util::fmt(peak_indirect_speedup, 2) + "x");
  table.row().cell("peak indirect R-bus utilization").cell("39%").cell(
      util::fmt_pct(peak_indirect_util));
  table.row().cell("PACK vs IDEAL performance").cell("97%").cell(
      ratio_count ? util::fmt_pct(ratio_sum / ratio_count)
                  : std::string("-"));
  table.row().cell("peak strided energy-eff. gain").cell("5.3x").cell(
      util::fmt(peak_strided_eff, 2) + "x");
  table.row().cell("peak indirect energy-eff. gain").cell("2.1x").cell(
      util::fmt(peak_indirect_eff, 2) + "x");
  table.row().cell("adapter area / Ara area").cell("6.2%").cell(
      util::fmt_pct(adapter_ratio));
  table.row().cell("all workloads verified").cell("-").cell(
      sram.all_correct() ? "yes" : "NO");
  table.print(std::cout);
  std::printf("\n");

  // Same kernels over the cycle-level DRAM backend: where the packed bus
  // meets row buffers and refresh instead of SRAM banks. pack-w1 is the
  // PR-3 head-only scheduler; pack-batched the row-aware default. The
  // planner picks row-wise gemv/trmv on pack-dram (backend-aware), so the
  // strided kernels now match BASE's ~99% open-row hits.
  std::printf("DRAM endpoint recovery (baseline base-dram; w1 = head-only "
              "scheduler, batched = sched_window default, coalesce = "
              "batched + index coalescing unit):\n");
  auto w1 = sys::AxisValue::scenario("pack-256-dram-w1");
  w1.label = "pack-w1";
  auto batched = sys::AxisValue::scenario("pack-dram");
  batched.label = "pack-batched";
  auto coalesced = sys::AxisValue::scenario("pack-dram-coalesce");
  coalesced.label = "pack-coalesce";
  const auto& dram = ctx.run(
      sys::ExperimentSpec("headline-dram")
          .kernels_axis(kernels)
          .axis("endpoint",
                {sys::AxisValue::scenario("base-dram"), std::move(w1),
                 std::move(batched), std::move(coalesced)})
          .baseline("endpoint", "base-dram"));
  std::printf("dram workloads verified: %s\n\n",
              dram.all_correct() ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
