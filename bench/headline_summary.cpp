// Headline summary: the paper's abstract-level claims, paper vs measured.
//
//   * peak strided speedup 5.4x (ismt), bus utilization 87% (gemv)
//   * peak indirect speedup 2.4x (spmv), bus utilization 39% (sssp)
//   * PACK ~97% of IDEAL on average
//   * energy efficiency up to 5.3x strided / 2.1x indirect
//   * 256-bit adapter = 6.2% of Ara's area
#include "bench_common.hpp"
#include "energy/area_model.hpp"
#include "energy/power_model.hpp"
#include "systems/runner.hpp"

namespace {

using namespace axipack;

void emit() {
  bench::figure_header("Headline", "paper-vs-measured summary");
  const wl::KernelKind kernels[] = {wl::KernelKind::ismt, wl::KernelKind::gemv,
                                    wl::KernelKind::trmv, wl::KernelKind::spmv,
                                    wl::KernelKind::prank,
                                    wl::KernelKind::sssp};
  double peak_strided_speedup = 0.0;
  double peak_indirect_speedup = 0.0;
  double peak_strided_util = 0.0;
  double peak_indirect_util = 0.0;
  double peak_strided_eff = 0.0;
  double peak_indirect_eff = 0.0;
  double ratio_sum = 0.0;
  bool all_correct = true;
  // The 18 SRAM (kernel, system) points plus the 12 DRAM-endpoint points
  // are independent: one sweep, thread pool.
  std::vector<sys::WorkloadJob> jobs;
  for (const auto kernel : kernels) {
    for (const auto kind : {sys::SystemKind::base, sys::SystemKind::pack,
                            sys::SystemKind::ideal}) {
      jobs.push_back({sys::scenario_name(kind),
                      sys::default_workload(kernel, kind)});
    }
  }
  // DRAM-recovery set: every kernel on base-dram, on pack-dram with the
  // head-only scheduler ("-w1", the PR-3 behaviour that lost to BASE), and
  // on pack-dram with row-aware batching (the default) — all three over the
  // same latency-tolerant converter queues, so the delta isolates the
  // scheduler.
  const std::size_t dram_jobs_begin = jobs.size();
  for (const auto kernel : kernels) {
    jobs.push_back({"base-dram",
                    sys::default_workload(kernel, sys::SystemKind::base)});
    jobs.push_back({"pack-256-dram-w1",
                    sys::default_workload(kernel, sys::SystemKind::pack)});
    jobs.push_back({"pack-dram",
                    sys::default_workload(kernel, sys::SystemKind::pack)});
  }
  const auto results = sys::run_workloads(jobs);
  std::size_t j = 0;
  for (const auto kernel : kernels) {
    const auto& base = results[j++];
    const auto& pack = results[j++];
    const auto& ideal = results[j++];
    all_correct = all_correct && base.correct && pack.correct && ideal.correct;
    const double speedup = static_cast<double>(base.cycles) / pack.cycles;
    const double eff = energy::efficiency_gain(
        energy::estimate(base), base.cycles,
        energy::estimate(pack), pack.cycles);
    ratio_sum += static_cast<double>(ideal.cycles) / pack.cycles;
    if (wl::kernel_is_indirect(kernel)) {
      peak_indirect_speedup = std::max(peak_indirect_speedup, speedup);
      peak_indirect_util = std::max(peak_indirect_util, pack.r_util);
      peak_indirect_eff = std::max(peak_indirect_eff, eff);
    } else {
      peak_strided_speedup = std::max(peak_strided_speedup, speedup);
      peak_strided_util = std::max(peak_strided_util, pack.r_util);
      peak_strided_eff = std::max(peak_strided_eff, eff);
    }
  }
  const double adapter_ratio =
      *energy::adapter_area_kge(256, 1000) / energy::ara_area_kge(8);

  util::Table table({"claim", "paper", "measured"});
  table.row().cell("peak strided speedup").cell("5.4x").cell(
      util::fmt(peak_strided_speedup, 2) + "x");
  table.row().cell("peak strided R-bus utilization").cell("87%").cell(
      util::fmt_pct(peak_strided_util));
  table.row().cell("peak indirect speedup").cell("2.4x").cell(
      util::fmt(peak_indirect_speedup, 2) + "x");
  table.row().cell("peak indirect R-bus utilization").cell("39%").cell(
      util::fmt_pct(peak_indirect_util));
  table.row().cell("PACK vs IDEAL performance").cell("97%").cell(
      util::fmt_pct(ratio_sum / 6.0));
  table.row().cell("peak strided energy-eff. gain").cell("5.3x").cell(
      util::fmt(peak_strided_eff, 2) + "x");
  table.row().cell("peak indirect energy-eff. gain").cell("2.1x").cell(
      util::fmt(peak_indirect_eff, 2) + "x");
  table.row().cell("adapter area / Ara area").cell("6.2%").cell(
      util::fmt_pct(adapter_ratio));
  table.row().cell("all workloads verified").cell("-").cell(
      all_correct ? "yes" : "NO");
  table.print(std::cout);
  std::printf("\n");

  // Same kernels over the cycle-level DRAM backend: where the packed bus
  // meets row buffers and refresh instead of SRAM banks. The recovery
  // columns show the PR-3 finding (head-only scheduling loses to BASE) and
  // its reversal by row-aware batching.
  std::printf("DRAM endpoint recovery (base-dram vs pack-dram, default "
              "timing; w1 = head-only scheduler, batched = sched_window "
              "default):\n");
  util::Table dram_table({"kernel", "speedup w1", "speedup batched",
                          "pack hit% w1", "pack hit% batched", "base hit%",
                          "batch defers"});
  bool dram_correct = true;
  std::size_t d = dram_jobs_begin;
  for (const auto kernel : kernels) {
    const auto& base = results[d++];
    const auto& w1 = results[d++];
    const auto& pack = results[d++];
    dram_correct =
        dram_correct && base.correct && w1.correct && pack.correct;
    dram_table.row()
        .cell(wl::kernel_name(kernel))
        .cell(util::fmt(static_cast<double>(base.cycles) / w1.cycles, 2) +
              "x")
        .cell(util::fmt(static_cast<double>(base.cycles) / pack.cycles, 2) +
              "x")
        .cell(util::fmt_pct(w1.row_hit_ratio()))
        .cell(util::fmt_pct(pack.row_hit_ratio()))
        .cell(util::fmt_pct(base.row_hit_ratio()))
        .cell(std::to_string(pack.row_batch_defer_cycles));
  }
  dram_table.print(std::cout);
  std::printf("dram workloads verified: %s\n\n", dram_correct ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
