// Fig. 11 (extension): per-request latency under open-loop load. A seeded
// Poisson arrival process issues indirect-gather requests (64 words each)
// through the scatter-gather ring DMA at a fixed offered rate; the sweep
// crosses offered rate x system (narrow baseline, AXI-Pack, AXI-Pack with
// the near-memory coalescing stage) x memory channels and records the p50 /
// p95 / p99 sojourn latency, the achieved rate and the in-system queue
// high-water mark at every point.
//
// Expected shape: below saturation every system tracks the offered rate
// with a flat latency floor; past its knee the queue grows without bound
// inside the window, p99 explodes and achieved < offered. The packed
// systems move that knee to a 2x higher rate than the narrow baseline at
// the same p99 SLO (<= 5000 cycles) — the headline this bench gates on,
// stamped per curve as `knee_rate`.
#include <cstdint>
#include <string>

#include "bench_common.hpp"
#include "systems/scenario.hpp"
#include "systems/system.hpp"

namespace {

using namespace axipack;

/// p99 SLO (cycles) defining the saturation knee of each latency curve.
constexpr double kSloP99 = 5000.0;

/// The system axis carries the closed-loop scenario stem the runner
/// composes with -ch{C}-p{R}; coalesce is pack plus the near-memory
/// coalescing stage from PR 6.
sys::AxisValue system_value(const std::string& label,
                            const std::string& stem) {
  return sys::AxisValue::shaped(label, [stem](sys::PointDraft& d) {
    d.scenario = stem;
  });
}

void emit(bench::BenchContext& ctx) {
  bench::figure_header("Fig. 11", "open-loop latency under load");
  sys::ExperimentSpec spec("fig11");
  spec.param_axis("rate", "rate", {20, 40, 80, 160, 320})
      .axis("system", {system_value("base-dram", "base-256-dram"),
                       system_value("pack-dram", "pack-256-dram"),
                       system_value("coalesce-dram",
                                    "pack-256-dram-x512-g16")})
      .param_axis("channels", "channels", {1, 2})
      .runner([](const sys::GridPoint& p) {
        const unsigned rate = static_cast<unsigned>(p.param("rate"));
        const unsigned channels =
            static_cast<unsigned>(p.param("channels"));
        std::string name = p.scenario;
        if (channels > 1) name += "-ch" + std::to_string(channels);
        name += "-p" + std::to_string(rate);
        auto system = sys::ScenarioRegistry::instance().builder(name).build();
        sys::PointResult out;
        // 400k measured cycles keep >= ~80 window completions at the
        // lowest rate; --quick trades tail resolution for wall clock.
        out.run = system->run_open_loop(p.quick ? 60'000 : 400'000);
        out.metrics["latency_p50"] = out.run.latency.percentile(50);
        out.metrics["latency_p95"] = out.run.latency.percentile(95);
        out.metrics["latency_p99"] = out.run.latency.percentile(99);
        out.metrics["offered_rate"] = out.run.offered_rate;
        out.metrics["achieved_rate"] = out.run.achieved_rate;
        out.metrics["queue_peak"] =
            static_cast<double>(out.run.queue_peak);
        return out;
      });
  sys::ResultSet set = ctx.prepare(spec).run();

  // Knee enrichment, joined across the rate axis: each (system, channels)
  // curve's knee is the highest swept rate still meeting the p99 SLO,
  // stamped on every row of the curve (0 when even the lowest rate
  // misses). The headline ratio knee(coalesce) / knee(base-dram) is the
  // floor perf_kernel gates on.
  auto& rows = set.mutable_rows();
  const auto curve_knee = [&](const sys::ResultRow& like) -> double {
    double knee = 0.0;
    for (const auto& r : rows) {
      if (r.coord("system") != like.coord("system") ||
          r.coord("channels") != like.coord("channels")) {
        continue;
      }
      const double rate = r.metrics.at("offered_rate");
      if (r.metrics.at("latency_p99") <= kSloP99 && rate > knee) {
        knee = rate;
      }
    }
    return knee;
  };
  for (auto& row : rows) {
    row.metrics["slo_p99"] = kSloP99;
    row.metrics["knee_rate"] = curve_knee(row);
  }
  ctx.report(std::move(set));

  std::printf(
      "\nexpected shape: flat latency floor below the knee, p99 blow-up and "
      "achieved <\noffered past it; the packed systems' knee sits ~2x the "
      "narrow baseline's at the\nsame p99 <= %.0f-cycle SLO\n\n",
      kSloP99);
}

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
