// Fig. 6 (extension): packed-bus utilization over the DRAM backend as a
// function of row-buffer locality and address-mapping policy.
//
// The paper evaluates AXI-Pack against on-chip banked SRAM; this sweep
// re-runs the strided (ismt) and indirect (spmv) headline kernels on the
// BASE and PACK SoCs over the cycle-level "dram" backend, sweeping the
// row-buffer size (which moves the achieved row-hit ratio) under both
// address-mapping policies.
//
// Measured shape (and the point of the figure): PACK's utilization and
// speedup track the row-hit ratio — on strided kernels its wide packed
// beats monetize large row buffers (speedup grows with row size, most
// visibly under row-interleaved mapping where BASE serializes on one
// bank). On indirect kernels PACK's fine-grained index/gather interleaving
// used to ping-pong banks between regions and thrash row buffers (the
// PR-3 "DRAM finding"); the row-aware batching scheduler (the default —
// see bench/fig7_row_batching for its sensitivity) coalesces same-row
// requests across the per-port lookahead windows, so PACK now beats BASE
// across the grid. Disable it with sched_window 1 to reproduce the thrash.
#include "bench_common.hpp"
#include "mem/dram_timing.hpp"

namespace {

using namespace axipack;

sys::AxisValue mapping_value(mem::DramMapping mapping) {
  return sys::AxisValue::shaped(
      mem::dram_mapping_name(mapping), [mapping](sys::PointDraft& d) {
        d.params["mapping"] = static_cast<double>(static_cast<int>(mapping));
      });
}

/// System axis value that also retargets the SoC onto the "dram" backend
/// with the timing the earlier axes parameterized. `coalesce` additionally
/// enables the index coalescing unit (pack only; default entries/window).
sys::AxisValue dram_system(sys::SystemKind kind, bool coalesce = false,
                           const char* label = nullptr) {
  return sys::AxisValue::shaped(
      label != nullptr ? label : sys::system_name(kind),
      [kind, coalesce](sys::PointDraft& d) {
        d.kind = kind;
        const auto mapping = static_cast<mem::DramMapping>(
            static_cast<int>(d.param("mapping")));
        const unsigned rw = static_cast<unsigned>(d.param("row_words"));
        d.builder_patches.push_back(
            [mapping, rw, coalesce](sys::SystemBuilder& b) {
              mem::DramTimingConfig t;
              t.mapping = mapping;
              t.row_words = rw;
              b.memory("dram").dram_timing(t);
              if (coalesce) b.coalescer(true);
            });
      });
}

void emit(bench::BenchContext& ctx) {
  bench::figure_header(
      "Fig. 6", "DRAM row-buffer sensitivity (base-dram vs pack-dram)");
  const auto& results = ctx.run(
      sys::ExperimentSpec("fig6")
          .kernels_axis({wl::KernelKind::ismt, wl::KernelKind::spmv})
          .axis("mapping",
                {mapping_value(mem::DramMapping::permuted),
                 mapping_value(mem::DramMapping::bank_interleaved),
                 mapping_value(mem::DramMapping::row_interleaved)})
          .param_axis("row_words", "row_words", {32, 64, 128, 256, 512})
          .axis("system",
                {dram_system(sys::SystemKind::base),
                 dram_system(sys::SystemKind::pack),
                 dram_system(sys::SystemKind::pack, /*coalesce=*/true,
                             "pack-co")})
          .baseline("system", "base")
          .configure([](wl::WorkloadConfig& c) {
            c.n = 192;
            c.nnz_per_row = 64;
          }));
  std::printf("\nshape: PACK utilization/speedup track the row-hit ratio — "
              "strided kernels monetize large rows; row-aware batching "
              "(fig7) keeps indirect kernels from thrashing row buffers\n");
  std::printf("all workloads verified: %s\n\n",
              results.all_correct() ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
