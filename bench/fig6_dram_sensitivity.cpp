// Fig. 6 (extension): packed-bus utilization over the DRAM backend as a
// function of row-buffer locality and address-mapping policy.
//
// The paper evaluates AXI-Pack against on-chip banked SRAM; this sweep
// re-runs the strided (ismt) and indirect (spmv) headline kernels on the
// BASE and PACK SoCs over the cycle-level "dram" backend, sweeping the
// row-buffer size (which moves the achieved row-hit ratio) under both
// address-mapping policies.
//
// Measured shape (and the point of the figure): PACK's utilization and
// speedup track the row-hit ratio — on strided kernels its wide packed
// beats monetize large row buffers (speedup grows with row size, most
// visibly under row-interleaved mapping where BASE serializes on one
// bank). On indirect kernels PACK's fine-grained index/gather interleaving
// used to ping-pong banks between regions and thrash row buffers (the
// PR-3 "DRAM finding"); the row-aware batching scheduler (the default —
// see bench/fig7_row_batching for its sensitivity) coalesces same-row
// requests across the per-port lookahead windows, so PACK now beats BASE
// across the grid. Disable it with sched_window 1 to reproduce the thrash.
//
// All (system, workload, timing) points are independent: one SweepRunner
// pass over the full grid.
#include <vector>

#include "bench_common.hpp"
#include "mem/dram_timing.hpp"
#include "systems/runner.hpp"
#include "systems/scenario.hpp"
#include "systems/sweep.hpp"

namespace {

using namespace axipack;

struct Point {
  sys::RunResult base;
  sys::RunResult pack;
};

sys::RunResult run_one(sys::SystemKind kind, const mem::DramTimingConfig& t,
                       wl::KernelKind kernel) {
  sys::SystemBuilder b = sys::ScenarioRegistry::instance().builder(
      sys::scenario_name(kind));
  b.memory("dram").dram_timing(t);
  auto cfg = sys::default_workload(kernel, kind);
  cfg.n = 192;
  cfg.nnz_per_row = 64;
  return sys::run_workload(b, cfg);
}

void emit() {
  bench::figure_header(
      "Fig. 6", "DRAM row-buffer sensitivity (base-dram vs pack-dram)");
  const unsigned row_words[] = {32, 64, 128, 256, 512};
  const mem::DramMapping mappings[] = {mem::DramMapping::permuted,
                                       mem::DramMapping::bank_interleaved,
                                       mem::DramMapping::row_interleaved};
  const wl::KernelKind kernels[] = {wl::KernelKind::ismt,
                                    wl::KernelKind::spmv};

  // Build the full independent job grid, then one thread-pool pass.
  std::vector<std::function<Point()>> jobs;
  for (const auto kernel : kernels) {
    for (const auto mapping : mappings) {
      for (const unsigned rw : row_words) {
        jobs.push_back([kernel, mapping, rw] {
          mem::DramTimingConfig t;
          t.mapping = mapping;
          t.row_words = rw;
          Point p;
          p.base = run_one(sys::SystemKind::base, t, kernel);
          p.pack = run_one(sys::SystemKind::pack, t, kernel);
          return p;
        });
      }
    }
  }
  const std::vector<Point> points = sys::SweepRunner().map(jobs);

  std::size_t j = 0;
  bool all_correct = true;
  for (const auto kernel : kernels) {
    for (const auto mapping : mappings) {
      std::printf("%s, %s mapping:\n", wl::kernel_name(kernel),
                  mem::dram_mapping_name(mapping));
      util::Table table({"row words", "pack hit%", "base hit%", "pack R-util",
                         "base R-util", "speedup", "refresh stalls"});
      for (const unsigned rw : row_words) {
        const Point& p = points[j++];
        all_correct = all_correct && p.base.correct && p.pack.correct;
        table.row()
            .cell(std::to_string(rw))
            .cell(util::fmt_pct(p.pack.row_hit_ratio()))
            .cell(util::fmt_pct(p.base.row_hit_ratio()))
            .cell(util::fmt_pct(p.pack.r_util))
            .cell(util::fmt_pct(p.base.r_util))
            .cell(util::fmt(static_cast<double>(p.base.cycles) /
                                static_cast<double>(p.pack.cycles),
                            2) +
                  "x")
            .cell(std::to_string(p.pack.refresh_stall_cycles));
      }
      table.print(std::cout);
      std::printf("\n");
    }
  }
  std::printf("shape: PACK utilization/speedup track the row-hit ratio — "
              "strided kernels monetize large rows; row-aware batching "
              "(fig7) keeps indirect kernels from thrashing row buffers\n");
  std::printf("all workloads verified: %s\n\n", all_correct ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  return axipack::bench::run_bench_main(argc, argv, emit);
}
