// Sparse matrix-vector multiply with in-memory indirection: shows how the
// PACK system's vlimxei instruction removes index traffic from the bus and
// speeds up the gather-dominated kernel (paper's headline indirect result).
//
// Usage: spmv_demo [rows] [avg_nnz_per_row]     (default 256 x 64)
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "systems/runner.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace axipack;
  const std::uint32_t rows =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 256;
  const std::uint32_t nnz =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 64;

  std::printf("spmv: %u rows, ~%u nonzeros/row (CSR, FP32, 32-bit indices)\n\n",
              rows, nnz);
  util::Table table({"system", "indices", "cycles", "R util", "R util w/o idx",
                     "speedup", "correct"});
  std::uint64_t base_cycles = 0;
  for (const auto kind : {sys::SystemKind::base, sys::SystemKind::pack,
                          sys::SystemKind::ideal}) {
    auto wl_cfg = sys::plan_workload(wl::KernelKind::spmv, sys::scenario_name(kind));
    wl_cfg.n = rows;
    wl_cfg.nnz_per_row = nnz;
    const auto result =
        sys::run_workload(sys::scenario_name(kind), wl_cfg);
    if (kind == sys::SystemKind::base) base_cycles = result.cycles;
    table.row()
        .cell(sys::system_name(kind))
        .cell(wl_cfg.in_memory_indices ? "in-memory (vlimxei)"
                                       : "core-side (vle+vluxei)")
        .cell(result.cycles)
        .cell(util::fmt_pct(result.r_util))
        .cell(util::fmt_pct(result.r_util_no_idx))
        .cell(static_cast<double>(base_cycles) / result.cycles, 2)
        .cell(result.correct ? "yes" : ("NO: " + result.error));
  }
  table.print(std::cout);
  std::printf("\npaper (heart1, 390 nnz/row): PACK speedup 2.4x; in-memory "
              "indirection keeps index\ntraffic off the bus (IDEAL wastes up "
              "to 20%% of bus time on indices)\n");
  return 0;
}
