// Quickstart: drive an AXI-Pack adapter + banked memory directly over an
// AXI port, exactly like the paper's Fig. 1 example — a strided read with
// stride 5 starting at element 4 — and watch the scattered elements come
// back tightly packed on the R channel.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "axi/burst.hpp"
#include "axi/types.hpp"
#include "systems/builder.hpp"
#include "systems/system.hpp"

int main() {
  using namespace axipack;

  // ---- assemble: port -> AXI-Pack adapter -> 17-bank word memory ----
  sys::SystemBuilder builder;
  builder.bus_bits(256)                      // 8 word ports, 17 banks
      .mem_region(0x8000'0000ull, 1 << 20)   // (paper defaults)
      .queue_depth(4)
      .monitor(false);                       // host port feeds the adapter
  const sys::MasterId host = builder.attach_port("host");
  auto system = builder.build();
  sim::Kernel& kernel = system->kernel();
  mem::BackingStore& store = system->store();
  axi::AxiPort& port = system->master_port(host);

  // ---- data: the value at element i is just i (like Fig. 1's addresses) --
  for (std::uint32_t i = 0; i < 256; ++i) {
    store.write_u32(0x8000'0000ull + 4ull * i, i);
  }

  // ---- a strided AXI-Pack read: 16 elements, start 4, stride 5 ----------
  const auto bursts = axi::split_pack_strided(
      /*base=*/0x8000'0000ull + 4ull * 4, /*stride_bytes=*/5 * 4,
      /*elem_bytes=*/4, /*num_elems=*/16, /*bus_bytes=*/32);
  std::printf("AXI-Pack strided read: 16 elements, stride 5, from elem 4\n");
  std::printf("(a plain AXI4 master would need 16 narrow single-beat "
              "bursts;\n AXI-Pack packs them into %u wide beats)\n\n",
              bursts[0].beats());

  port.ar.push(bursts[0]);
  unsigned beat_no = 0;
  kernel.run_until([&] {
    while (port.r.can_pop()) {
      const axi::AxiR beat = port.r.pop();
      std::printf("R beat %u (%2u useful bytes): ", beat_no++,
                  beat.useful_bytes);
      for (unsigned e = 0; e < beat.useful_bytes / 4; ++e) {
        std::uint32_t v;
        axi::extract_bytes(beat.data, 4 * e,
                           reinterpret_cast<std::uint8_t*>(&v), 4);
        std::printf("%4u", v);
      }
      std::printf("%s\n", beat.last ? "   <- last" : "");
      if (beat.last) return true;
    }
    return false;
  });

  std::printf("\nElapsed: %llu cycles for 16 scattered elements "
              "(packed, bank-parallel)\n",
              static_cast<unsigned long long>(kernel.now()));
  return 0;
}
