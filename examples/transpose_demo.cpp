// In-situ matrix transpose (the paper's `ismt` benchmark) on all three
// evaluation systems, printing cycles, read-bus utilization and the
// PACK-over-BASE speedup — the paper's headline strided result.
//
// Usage: transpose_demo [matrix_dim]     (default 128)
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "systems/runner.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace axipack;
  const std::uint32_t n =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 128;

  std::printf("ismt: in-situ transpose of a %ux%u FP32 matrix\n\n", n, n);
  util::Table table({"system", "cycles", "R util", "W util", "speedup",
                     "correct"});
  std::uint64_t base_cycles = 0;
  for (const auto kind : {sys::SystemKind::base, sys::SystemKind::pack,
                          sys::SystemKind::ideal}) {
    auto wl_cfg = sys::plan_workload(wl::KernelKind::ismt, sys::scenario_name(kind));
    wl_cfg.n = n;
    const auto result =
        sys::run_workload(sys::scenario_name(kind), wl_cfg);
    if (kind == sys::SystemKind::base) base_cycles = result.cycles;
    table.row()
        .cell(sys::system_name(kind))
        .cell(result.cycles)
        .cell(util::fmt_pct(result.r_util))
        .cell(util::fmt_pct(result.w_util))
        .cell(static_cast<double>(base_cycles) / result.cycles, 2)
        .cell(result.correct ? "yes" : ("NO: " + result.error));
  }
  table.print(std::cout);
  std::printf("\npaper (n=256, 256b bus): PACK speedup 5.4x, PACK R util "
              "~50%% (read-write ordering)\n");
  return 0;
}
