// Ahead-of-time data layout transform with the AXI-Pack DMA engine.
//
// The paper's Related Work positions AXI-Pack as subsuming DLT accelerators
// (PLANAR, the HMC rearrangement engine): "bus packing can be done on the
// fly by our controller or ahead of time by an AXI-Pack-capable DMA
// controller". This example gathers a strided matrix column into a
// contiguous buffer three ways and compares the cost:
//
//   1. pack DMA    — one AXI-Pack strided burst stream (this paper),
//   2. narrow DMA  — a conventional per-element gather engine (baseline),
//   3. and shows the descriptor-chain API batching several columns.
//
// Usage: dma_transform [matrix_dim]           (default 256)
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "dma/descriptor.hpp"
#include "dma/engine.hpp"
#include "systems/scenario.hpp"
#include "systems/system.hpp"
#include "util/table.hpp"

namespace {

using namespace axipack;

/// Minimal single-master fabric: DMA -> adapter -> 17-bank memory — the
/// registry's "single-dma-{pack,narrow}" scenarios.
struct Fabric {
  std::unique_ptr<sys::System> system;
  mem::BackingStore& store;
  dma::DmaEngine& engine;

  explicit Fabric(bool use_pack)
      : system(sys::ScenarioRegistry::instance().build(
            use_pack ? "single-dma-pack" : "single-dma-narrow")),
        store(system->store()),
        engine(system->dma(0)) {}

  std::uint64_t run() {
    const std::uint64_t start = system->kernel().now();
    const bool ok = system->run_until_drained(50'000'000);
    if (!ok) std::fprintf(stderr, "DMA did not drain!\n");
    return system->kernel().now() - start;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t n =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 256;
  std::printf("dma_transform: gathering one column of a %ux%u FP32 matrix "
              "into a contiguous buffer\n\n", n, n);

  util::Table table({"engine", "bursts (AR)", "R beats", "cycles",
                     "bytes/cycle", "speedup"});
  std::uint64_t narrow_cycles = 0;
  for (const bool use_pack : {false, true}) {
    Fabric fab(use_pack);
    // Row-major matrix; column gather is a stride of one row.
    const std::uint64_t mat = fab.store.alloc(std::uint64_t{n} * n * 4, 64);
    const std::uint64_t dst = fab.store.alloc(std::uint64_t{n} * 4, 64);
    for (std::uint64_t i = 0; i < std::uint64_t{n} * n; ++i) {
      fab.store.write_f32(mat + 4 * i, static_cast<float>(i % 1000));
    }

    dma::Descriptor d;
    d.src = dma::Pattern::strided(mat + 4 * 7 /* column 7 */,
                                  std::int64_t{n} * 4);
    d.dst = dma::Pattern::contiguous(dst);
    d.elem_bytes = 4;
    d.num_elems = n;
    fab.engine.push(d);
    const std::uint64_t cycles = fab.run();
    if (!use_pack) narrow_cycles = cycles;

    bool correct = true;
    for (std::uint64_t i = 0; i < n; ++i) {
      correct &= fab.store.read_f32(dst + 4 * i) ==
                 fab.store.read_f32(mat + 4 * 7 + i * std::uint64_t{n} * 4);
    }
    const auto& s = fab.engine.stats();
    table.row()
        .cell(use_pack ? "AXI-Pack strided burst" : "per-element narrow")
        .cell(s.ar_bursts)
        .cell(s.r_beats)
        .cell(cycles)
        .cell(static_cast<double>(s.bytes_moved) / cycles, 2)
        .cell(correct
                  ? util::fmt(static_cast<double>(narrow_cycles) / cycles, 2) +
                        "x"
                  : std::string("WRONG DATA"));
  }
  table.print(std::cout);

  // Descriptor chains batch many transforms with one host interaction.
  std::printf("\nbatching all %u columns with one in-memory descriptor "
              "chain:\n", std::min(n, 8u));
  Fabric fab(true);
  const std::uint64_t mat = fab.store.alloc(std::uint64_t{n} * n * 4, 64);
  for (std::uint64_t i = 0; i < std::uint64_t{n} * n; ++i) {
    fab.store.write_f32(mat + 4 * i, static_cast<float>(i));
  }
  std::vector<dma::Descriptor> chain;
  for (std::uint32_t c = 0; c < std::min(n, 8u); ++c) {
    dma::Descriptor d;
    d.src = dma::Pattern::strided(mat + 4ull * c, std::int64_t{n} * 4);
    d.dst = dma::Pattern::contiguous(
        fab.store.alloc(std::uint64_t{n} * 4, 64));
    d.elem_bytes = 4;
    d.num_elems = n;
    chain.push_back(d);
  }
  fab.engine.start_chain(dma::build_chain(fab.store, chain));
  const std::uint64_t cycles = fab.run();
  std::printf("  %zu descriptors, %llu cycles total, %llu descriptor-fetch "
              "bytes on the bus\n",
              chain.size(), static_cast<unsigned long long>(cycles),
              static_cast<unsigned long long>(
                  fab.engine.stats().desc_fetch_bytes));
  return 0;
}
