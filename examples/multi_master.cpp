// Multiple requestors sharing one AXI-Pack endpoint.
//
// The paper notes that "AXI-Pack supports non-core requestors (e.g.,
// accelerators) and systems with multiple requestors and endpoints". Here a
// vector processor runs sparse matrix-vector multiply with in-memory
// indirection while an AXI-Pack DMA engine simultaneously re-tiles a dense
// matrix (column gather) behind it — the pattern of a double-buffered
// pipeline where the DMA stages the next layer's data while the core
// computes the current one.
//
// The whole fabric — 2 masters -> crossbar -> monitored link -> AXI-Pack
// adapter -> 17 banks — is one registry scenario: "dual-master-pack".
//
// Usage: multi_master [spmv_rows] [gather_dim]   (default 128 256)
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "dma/descriptor.hpp"
#include "dma/engine.hpp"
#include "systems/runner.hpp"
#include "systems/scenario.hpp"
#include "systems/system.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace axipack;
  const std::uint32_t rows =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 128;
  const std::uint32_t dim =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 256;

  // --- The registered dual-master scenario: vproc + DMA share the fabric.
  auto system = sys::ScenarioRegistry::instance().build("dual-master-pack");
  mem::BackingStore& store = system->store();

  // --- Master 0: vector processor running spmv with vlimxei.
  auto wl_cfg = sys::plan_workload(
      wl::KernelKind::spmv, sys::scenario_name(sys::SystemKind::pack));
  wl_cfg.n = rows;
  wl_cfg.nnz_per_row = std::min(rows, 64u);
  const wl::WorkloadInstance inst = wl::build_workload(store, wl_cfg);

  // --- Master 1: DMA gathering eight matrix columns into contiguous tiles.
  dma::DmaEngine& engine = system->dma(1);
  const std::uint64_t mat = store.alloc(std::uint64_t{dim} * dim * 4, 64);
  for (std::uint64_t i = 0; i < std::uint64_t{dim} * dim; ++i) {
    store.write_f32(mat + 4 * i, static_cast<float>(i % 997));
  }
  std::vector<dma::Descriptor> chain;
  std::vector<std::uint64_t> tiles;
  for (std::uint32_t c = 0; c < 8; ++c) {
    dma::Descriptor d;
    d.src = dma::Pattern::strided(mat + 4ull * c, std::int64_t{dim} * 4);
    d.dst = dma::Pattern::contiguous(store.alloc(std::uint64_t{dim} * 4, 64));
    tiles.push_back(d.dst.addr);
    d.elem_bytes = 4;
    d.num_elems = dim;
    chain.push_back(d);
  }
  engine.start_chain(dma::build_chain(store, chain));

  // --- Run both to completion.
  system->processor(0).run(inst.program);
  if (!system->run_until_drained(100'000'000)) {
    std::fprintf(stderr, "system did not drain\n");
    return 1;
  }

  std::string msg;
  const bool spmv_ok = inst.check(store, msg);
  bool dma_ok = true;
  for (std::uint32_t c = 0; c < 8; ++c) {
    for (std::uint64_t i = 0; i < dim; ++i) {
      dma_ok &= store.read_f32(tiles[c] + 4 * i) ==
                store.read_f32(mat + 4ull * c + i * std::uint64_t{dim} * 4);
    }
  }

  const axi::BusStats& bus = *system->bus_stats();
  const pack::AdapterStats& astats = system->adapter().stats();
  std::printf("multi_master: spmv (%u rows) on the vector core + 8-column "
              "gather DMA, one shared AXI-Pack adapter\n"
              "(scenario \"dual-master-pack\" from the registry)\n\n", rows);
  std::printf("  total cycles        : %llu\n",
              static_cast<unsigned long long>(system->kernel().now()));
  std::printf("  spmv result         : %s\n",
              spmv_ok ? "correct" : ("WRONG: " + msg).c_str());
  std::printf("  dma tiles           : %s\n",
              dma_ok ? "correct" : "WRONG DATA");
  std::printf("  adapter bursts      : base=%llu stridedR=%llu indirR=%llu\n",
              static_cast<unsigned long long>(astats.base_reads),
              static_cast<unsigned long long>(astats.strided_reads),
              static_cast<unsigned long long>(astats.indirect_reads));
  std::printf("  shared R bus        : %llu beats, %llu payload bytes\n",
              static_cast<unsigned long long>(bus.r_beats),
              static_cast<unsigned long long>(bus.r_payload_bytes));
  std::printf("\nboth requestors' packed streams interleave through the "
              "crossbar and adapter\nwithout reshaping — the property the "
              "paper's protocol design targets.\n");
  return (spmv_ok && dma_ok) ? 0 : 1;
}
