// PageRank on a synthetic digraph, run on the PACK system with AXI-Pack
// in-memory indirection. Demonstrates a complete application on top of the
// library: generation, iterative vector kernels, convergence checking
// against the golden reference, and performance/energy reporting.
//
// Usage: pagerank_demo [nodes] [avg_degree] [iterations]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "energy/power_model.hpp"
#include "systems/runner.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace axipack;
  const std::uint32_t nodes =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 256;
  const std::uint32_t degree =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 32;
  const std::uint32_t iters =
      argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3])) : 8;

  std::printf("pagerank: %u nodes, avg in-degree %u, %u iterations\n\n", nodes,
              degree, iters);

  util::Table table({"system", "cycles", "R util", "power (mW)",
                     "energy (uJ)", "correct"});
  sys::RunResult base_result;
  energy::PowerEstimate base_power;
  for (const auto kind : {sys::SystemKind::base, sys::SystemKind::pack}) {
    auto wl_cfg = sys::plan_workload(wl::KernelKind::prank, sys::scenario_name(kind));
    wl_cfg.n = nodes;
    wl_cfg.nnz_per_row = degree;
    wl_cfg.iterations = iters;
    const auto result = sys::run_workload(sys::scenario_name(kind), wl_cfg);
    const auto power = energy::estimate(result);
    if (kind == sys::SystemKind::base) {
      base_result = result;
      base_power = power;
    }
    table.row()
        .cell(sys::system_name(kind))
        .cell(result.cycles)
        .cell(util::fmt_pct(result.r_util))
        .cell(power.power_mw, 1)
        .cell(power.energy_uj, 2)
        .cell(result.correct ? "yes" : ("NO: " + result.error));
    if (kind == sys::SystemKind::pack) {
      std::printf("\n");
      table.print(std::cout);
      std::printf("\nspeedup:            %.2fx\n",
                  static_cast<double>(base_result.cycles) / result.cycles);
      std::printf("energy efficiency:  %.2fx (paper: up to 2.1x on indirect "
                  "workloads)\n",
                  energy::efficiency_gain(base_power, base_result.cycles,
                                          power, result.cycles));
    }
  }
  return 0;
}
